"""Tests for the communication package: UR protocols and reductions."""

import numpy as np
import pytest

from repro.apps.duplicates import DuplicateFinder
from repro.comm import (augmented_indexing_via_heavy_hitters,
                        augmented_indexing_via_ur, decode_ai_from_ur_index,
                        duplicates_protocol_for_ur, hh_vectors_from_ai,
                        information_floor_bits, one_round_protocol,
                        random_ai_instance, random_ur_instance, referee,
                        sampler_finds_duplicate, symmetrize,
                        two_round_protocol, ur_vectors_from_ai)
from repro.comm.augmented_indexing import AugmentedIndexingInstance


class TestInstances:
    def test_ur_instance_differs(self):
        inst = random_ur_instance(64, seed=1)
        assert inst.difference_set.size >= 1

    def test_ur_fixed_distance(self):
        inst = random_ur_instance(64, hamming_distance=5, seed=2)
        assert inst.difference_set.size == 5

    def test_ur_correctness_predicate(self):
        inst = random_ur_instance(64, hamming_distance=3, seed=3)
        d = inst.difference_set
        assert inst.is_correct(int(d[0]))
        same = next(i for i in range(64) if i not in set(d.tolist()))
        assert not inst.is_correct(same)
        assert not inst.is_correct(None)

    def test_ai_instance_fields(self):
        inst = random_ai_instance(10, 16, seed=4)
        assert inst.length == 10
        assert len(inst.prefix) == inst.index
        assert inst.answer == inst.string[inst.index]

    def test_referee(self):
        inst = random_ai_instance(5, 8, seed=5)
        assert referee(inst, inst.answer)
        assert not referee(inst, None)
        assert not referee(inst, (inst.answer + 1) % 8)

    def test_information_floor(self):
        assert information_floor_bits(10, 16, delta=0.5) \
            == pytest.approx(0.5 * 10 * 4)


class TestURProtocols:
    @pytest.mark.parametrize("distance", [1, 7, 40])
    def test_one_round_correct(self, distance):
        ok = 0
        for seed in range(10):
            inst = random_ur_instance(128, hamming_distance=distance,
                                      seed=seed)
            result = one_round_protocol(inst, delta=0.2, seed=seed)
            ok += inst.is_correct(result.output)
        assert ok >= 8

    @pytest.mark.parametrize("distance", [1, 7, 40])
    def test_two_round_correct(self, distance):
        ok = 0
        for seed in range(10):
            inst = random_ur_instance(128, hamming_distance=distance,
                                      seed=seed)
            result = two_round_protocol(inst, delta=0.2, seed=seed)
            ok += inst.is_correct(result.output)
        assert ok >= 7

    def test_one_round_has_one_message(self):
        inst = random_ur_instance(64, seed=1)
        assert one_round_protocol(inst, seed=1).rounds == 1

    def test_two_round_has_two_messages(self):
        inst = random_ur_instance(64, seed=1)
        assert two_round_protocol(inst, seed=1).rounds == 2

    def test_round_tradeoff_in_bits(self):
        """Proposition 5: the second round buys a log factor.

        Message sizes are measured on the encoded wire frames, whose
        per-message overhead is constant — so the asymptotic log-factor
        gap needs a universe large enough to dominate the framing of
        the second round's detector battery (crossover ~2^14).
        """
        n = 1 << 16
        inst = random_ur_instance(n, hamming_distance=10, seed=2)
        result1 = one_round_protocol(inst, seed=2)
        result2 = two_round_protocol(inst, seed=2)
        assert result2.total_bits < result1.total_bits
        # The framing-free model accounting agrees on the tradeoff.
        assert result2.meta["model_bits"] < result1.meta["model_bits"]

    def test_deterministic_baseline_always_correct(self):
        from repro.comm import deterministic_protocol

        for seed in range(5):
            inst = random_ur_instance(64, seed=seed)
            result = deterministic_protocol(inst, seed=seed)
            assert inst.is_correct(result.output)
            assert result.total_bits == 64  # Theta(n), the point

    def test_symmetrize_preserves_correctness(self):
        ok = 0
        for seed in range(8):
            inst = random_ur_instance(128, hamming_distance=9, seed=seed)
            result = symmetrize(one_round_protocol, inst, seed=seed,
                                delta=0.2)
            ok += inst.is_correct(result.output)
        assert ok >= 6

    def test_symmetrize_spreads_reported_indices(self):
        """Lemma 7: with symmetrization every differing index appears."""
        inst = random_ur_instance(32, hamming_distance=4, seed=11)
        seen = set()
        for seed in range(40):
            result = symmetrize(one_round_protocol, inst, seed=seed,
                                delta=0.2)
            if inst.is_correct(result.output):
                seen.add(int(result.output))
        assert len(seen) >= 3  # of the 4 differing positions


class TestTheorem6Construction:
    def test_vector_shapes(self):
        inst = AugmentedIndexingInstance(8, (1, 5, 2), 1)
        u, v = ur_vectors_from_ai(inst)
        assert u.size == (2**3 - 1) * 8
        assert v.size == u.size

    def test_prefix_blocks_cancel(self):
        inst = AugmentedIndexingInstance(8, (1, 5, 2), 1)
        u, v = ur_vectors_from_ai(inst)
        diff = np.flatnonzero(u != v)
        # no differences in block 0 (known to Bob), all in blocks >= 1
        assert diff.min() >= 4 * 8

    def test_majority_of_differences_reveal_queried_digit(self):
        inst = AugmentedIndexingInstance(8, (1, 5, 2, 7), 2)
        u, v = ur_vectors_from_ai(inst)
        diff = np.flatnonzero(u != v)
        revealed = [decode_ai_from_ur_index(inst, int(i)) for i in diff]
        correct = sum(r == inst.answer for r in revealed)
        assert correct / len(revealed) > 0.5  # the paper's key count

    def test_end_to_end_success_rate(self):
        ok, tries = 0, 12
        for seed in range(tries):
            inst = random_ai_instance(3, 8, seed=seed)
            result = augmented_indexing_via_ur(inst, one_round_protocol,
                                               seed=seed, delta=0.2)
            ok += referee(inst, result.output)
        assert ok / tries > 0.5


class TestTheorem7Reduction:
    def test_success_rate(self):
        ok, tries = 0, 5
        for seed in range(tries):
            inst = random_ur_instance(64, hamming_distance=7,
                                      seed=100 + seed)
            result = duplicates_protocol_for_ur(
                inst, seed=seed, attempts=12,
                finder_factory=lambda s: DuplicateFinder(
                    64, delta=0.34, seed=s, sampler_rounds=4))
            ok += inst.is_correct(result.output)
        assert ok >= 3

    def test_message_bits_positive(self):
        inst = random_ur_instance(48, hamming_distance=5, seed=7)
        result = duplicates_protocol_for_ur(
            inst, seed=7, attempts=6,
            finder_factory=lambda s: DuplicateFinder(
                48, delta=0.34, seed=s, sampler_rounds=3))
        assert result.total_bits > 0


class TestTheorem8Statement:
    def test_l1_sampler_finds_positive(self):
        from repro.core import L1Sampler

        ok, tries = 0, 8
        for seed in range(tries):
            inst = random_ur_instance(128, hamming_distance=11, seed=seed)
            result = sampler_finds_duplicate(
                inst, lambda n, s: L1Sampler(n, eps=0.5, rounds=10, seed=s),
                seed=seed)
            if result.output is not None:
                ok += inst.is_correct(result.output)
        assert ok >= 4

    def test_l0_sampler_also_works(self):
        """p is irrelevant for 0/+-1 vectors — the Theorem 8 point."""
        from repro.core import L0Sampler

        ok, tries = 0, 8
        for seed in range(tries):
            inst = random_ur_instance(128, hamming_distance=11, seed=seed)
            result = sampler_finds_duplicate(
                inst, lambda n, s: L0Sampler(n, delta=0.2, seed=s),
                seed=seed)
            if result.output is not None:
                ok += inst.is_correct(result.output)
        assert ok >= 6


class TestTheorem9Reduction:
    def test_geometric_weights(self):
        inst = AugmentedIndexingInstance(4, (1, 3, 0), 0)
        u, v = hh_vectors_from_ai(inst, p=1.0, phi=0.25)
        # base b = (1 - 0.5)^-1 = 2: weights 4, 2, 1
        weights = sorted(u[u > 0].tolist(), reverse=True)
        assert weights == [4, 2, 1]
        assert not v.any()  # index 0: Bob knows nothing

    def test_invalid_phi_rejected(self):
        inst = AugmentedIndexingInstance(4, (1, 3, 0), 0)
        with pytest.raises(ValueError):
            hh_vectors_from_ai(inst, p=1.0, phi=0.5)

    def test_first_surviving_block_is_heavy(self):
        """The Theorem 9 inequality: x_{l_i} >= phi ||x||_p."""
        for p, phi in ((1.0, 0.25), (1.5, 0.3), (0.5, 0.2)):
            inst = AugmentedIndexingInstance(8, (1, 5, 2, 7, 0), 2)
            u, v = hh_vectors_from_ai(inst, p=p, phi=phi)
            x = (u - v).astype(np.float64)
            norm = (np.abs(x)**p).sum() ** (1.0 / p)
            first = np.flatnonzero(x)[0] if np.flatnonzero(x).size else None
            assert first is not None
            assert abs(x[first]) >= phi * norm

    def test_end_to_end_success_rate(self):
        ok, tries = 0, 8
        for seed in range(tries):
            inst = random_ai_instance(4, 8, seed=seed)
            result = augmented_indexing_via_heavy_hitters(
                inst, p=1.0, phi=0.25, seed=seed)
            ok += referee(inst, result.output)
        assert ok >= 6

    def test_message_grows_with_phi_precision(self):
        inst = random_ai_instance(4, 8, seed=1)
        coarse = augmented_indexing_via_heavy_hitters(
            inst, p=1.0, phi=0.25, seed=1)
        fine = augmented_indexing_via_heavy_hitters(
            inst, p=1.0, phi=0.05, seed=1)
        assert fine.total_bits > coarse.total_bits
