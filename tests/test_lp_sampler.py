"""Tests for the Figure 1 precision Lp-sampler (core/lp_sampler.py).

These are the E1/E2 acceptance tests in miniature: the benchmarks in
benchmarks/ run the same measurements at larger scale.
"""

import numpy as np
import pytest

from repro.core import (L1Sampler, LpSampler, LpSamplerRound, lp_distribution)
from repro.streams import (pm1_vector, uniform_signed_vector, vector_to_stream,
                           zipf_vector)

from conftest import empirical_distribution


def run_rounds(vector, p, eps, trials, seed_base=0):
    stream = vector_to_stream(vector, seed=99)
    results = []
    for t in range(trials):
        sampler = LpSamplerRound(vector.size, p, eps, seed=seed_base + t)
        stream.apply_to(sampler)
        results.append(sampler.sample())
    return results


class TestValidation:
    def test_rejects_p_two(self):
        with pytest.raises(ValueError):
            LpSamplerRound(100, 2.0, 0.5)

    def test_rejects_p_zero(self):
        with pytest.raises(ValueError):
            LpSamplerRound(100, 0.0, 0.5)

    def test_paper_parameters_instantiated(self):
        rnd = LpSamplerRound(1024, 1.5, 0.25, seed=1)
        assert rnd.k == 20           # 10 * ceil(1/0.5)
        assert rnd.beta == pytest.approx(0.25 ** (1 - 1 / 1.5))


class TestZeroVector:
    def test_round_fails_on_zero_vector(self):
        rnd = LpSamplerRound(128, 1.0, 0.5, seed=1)
        result = rnd.sample()
        assert result.failed

    def test_cancelled_updates_fail(self):
        rnd = LpSamplerRound(128, 1.0, 0.5, seed=2)
        rnd.update(5, 10)
        rnd.update(5, -10)
        result = rnd.sample()
        assert result.failed


class TestSuccessRate:
    @pytest.mark.parametrize("p", [0.5, 1.0, 1.5])
    def test_round_success_is_theta_eps(self, p):
        """One round succeeds with probability in ~[eps/4, 2 eps]."""
        eps = 0.25
        vec = zipf_vector(400, scale=500, seed=3)
        results = run_rounds(vec, p, eps, trials=150, seed_base=1000)
        rate = sum(not r.failed for r in results) / len(results)
        assert eps / 8 <= rate <= 2.5 * eps

    def test_amplified_sampler_rarely_fails(self):
        vec = zipf_vector(300, scale=500, seed=4)
        stream = vector_to_stream(vec, seed=5)
        failures = 0
        for seed in range(12):
            sampler = LpSampler(300, 1.0, eps=0.3, delta=0.1, seed=seed)
            stream.apply_to(sampler)
            failures += sampler.sample().failed
        assert failures <= 2


class TestDistribution:
    @pytest.mark.parametrize("p", [0.5, 1.0, 1.5])
    def test_heavy_coordinate_frequency(self, p):
        """The dominant coordinate must be sampled at ~ its Lp weight."""
        n = 300
        vec = np.zeros(n, dtype=np.int64)
        vec[7] = 60          # dominant
        vec[50:150] = 2      # diffuse mass
        results = run_rounds(vec, p, eps=0.3, trials=300, seed_base=2000)
        emp, successes = empirical_distribution(results, n)
        assert successes > 15
        truth = lp_distribution(vec, p)
        assert emp[7] == pytest.approx(truth[7], abs=0.15)

    def test_supports_negative_coordinates(self):
        """|x_i| drives the distribution; signs must not matter."""
        n = 200
        vec = uniform_signed_vector(n, low=-30, high=30, seed=6)
        results = run_rounds(vec, 1.0, eps=0.3, trials=200, seed_base=3000)
        emp, successes = empirical_distribution(results, n)
        assert successes > 10
        # sampled coordinates must actually be non-zero ones
        sampled = np.flatnonzero(emp)
        assert np.all(vec[sampled] != 0)

    def test_pm1_vector_sampling(self):
        """The Theorem 8 regime: 0/+-1 vectors, p irrelevant."""
        n = 256
        vec = pm1_vector(n, zero_fraction=0.9, seed=7)
        results = run_rounds(vec, 1.0, eps=0.3, trials=200, seed_base=4000)
        support = set(np.flatnonzero(vec).tolist())
        for r in results:
            if not r.failed:
                assert r.index in support


class TestEstimates:
    @pytest.mark.parametrize("p", [0.5, 1.0, 1.5])
    def test_relative_error_within_eps(self, p):
        eps = 0.25
        vec = zipf_vector(400, scale=800, seed=8)
        results = run_rounds(vec, p, eps, trials=200, seed_base=5000)
        errors = [abs(r.estimate - vec[r.index]) / abs(vec[r.index])
                  for r in results if not r.failed and vec[r.index] != 0]
        assert len(errors) > 10
        # Lemma 4: relative error <= eps with high probability
        assert np.mean([e <= eps for e in errors]) >= 0.9

    def test_estimate_sign_matches(self):
        n = 200
        vec = uniform_signed_vector(n, low=-50, high=50, seed=9)
        results = run_rounds(vec, 1.0, eps=0.25, trials=200, seed_base=6000)
        agree = [np.sign(r.estimate) == np.sign(vec[r.index])
                 for r in results if not r.failed and vec[r.index] != 0]
        assert len(agree) > 10
        assert np.mean(agree) >= 0.95


class TestDiagnostics:
    def test_result_carries_recovery_internals(self):
        vec = zipf_vector(200, scale=300, seed=10)
        stream = vector_to_stream(vec, seed=11)
        rnd = LpSamplerRound(200, 1.0, 0.5, seed=3)
        stream.apply_to(rnd)
        result = rnd.sample()
        for key in ("r", "s", "z_star", "tail_threshold",
                    "weight_threshold"):
            assert key in result.diagnostics

    def test_lemma3_event_rate(self):
        """Pr[s > beta sqrt(m) r] = O(eps): the tail-abort must be rare."""
        eps = 0.25
        vec = zipf_vector(300, scale=500, seed=12)
        results = run_rounds(vec, 1.5, eps, trials=150, seed_base=7000)
        aborts = sum(r.reason == "tail-too-heavy" for r in results)
        assert aborts / len(results) <= 4 * eps


class TestL1Convenience:
    def test_l1_is_p1(self):
        sampler = L1Sampler(100, eps=0.5, rounds=2, seed=1)
        assert sampler.p == 1.0

    def test_rounds_override(self):
        sampler = LpSampler(100, 1.0, eps=0.5, rounds=5, seed=1)
        assert sampler.rounds == 5


class TestSpace:
    def test_space_scales_log_squared(self):
        """Quadrupling log n should ~quadruple counter bits (log^2 law)."""
        small = LpSamplerRound(1 << 8, 1.5, 0.25, seed=1)
        large = LpSamplerRound(1 << 16, 1.5, 0.25, seed=1)
        ratio = large.space_report().counter_total \
            / small.space_report().counter_total
        assert 2.5 < ratio < 6.5  # (16/8)^2 = 4 up to rounding

    def test_space_grows_with_inverse_eps_for_large_p(self):
        coarse = LpSamplerRound(1 << 10, 1.5, 0.5, seed=1)
        fine = LpSamplerRound(1 << 10, 1.5, 0.5 / 16, seed=1)
        assert fine.space_bits() > 2.5 * coarse.space_bits()

    def test_eps_free_for_small_p(self):
        coarse = LpSamplerRound(1 << 10, 0.5, 0.5, seed=1)
        fine = LpSamplerRound(1 << 10, 0.5, 0.05, seed=1)
        assert fine.space_report().counter_total \
            == coarse.space_report().counter_total
