"""Tests for L0Sampler merge/subtract (multi-party reconciliation)."""

import numpy as np
import pytest

from repro.core import L0Sampler
from repro.streams import sparse_vector, vector_to_stream


class TestMerge:
    def test_merge_equals_joint_stream(self):
        n = 256
        a_vec = sparse_vector(n, 10, seed=1)
        b_vec = sparse_vector(n, 10, seed=2)
        a = L0Sampler(n, delta=0.2, seed=9)
        b = L0Sampler(n, delta=0.2, seed=9)
        joint = L0Sampler(n, delta=0.2, seed=9)
        vector_to_stream(a_vec, seed=1).apply_to(a)
        vector_to_stream(b_vec, seed=2).apply_to(b)
        vector_to_stream(a_vec, seed=3).apply_to(joint)
        vector_to_stream(b_vec, seed=4).apply_to(joint)
        a.merge(b)
        ra, rj = a.sample(), joint.sample()
        assert ra.failed == rj.failed
        if not ra.failed:
            assert ra.index == rj.index
            assert ra.estimate == rj.estimate

    def test_three_way_union_support(self):
        n = 256
        shards = [sparse_vector(n, 6, seed=s) for s in (3, 4, 5)]
        union = sum(shards)
        samplers = [L0Sampler(n, delta=0.2, seed=11) for _ in shards]
        for sampler, shard in zip(samplers, shards):
            vector_to_stream(shard, seed=7).apply_to(sampler)
        root = samplers[0]
        root.merge(samplers[1])
        root.merge(samplers[2])
        result = root.sample()
        assert not result.failed
        assert union[result.index] != 0
        assert result.estimate == union[result.index]

    def test_subtract_finds_difference(self):
        n = 256
        x = sparse_vector(n, 12, seed=6)
        y = x.copy()
        y[np.flatnonzero(x)[0]] += 5
        a = L0Sampler(n, delta=0.2, seed=13)
        b = L0Sampler(n, delta=0.2, seed=13)
        vector_to_stream(x, seed=8).apply_to(a)
        vector_to_stream(y, seed=9).apply_to(b)
        a.subtract(b)
        result = a.sample()
        assert not result.failed
        assert result.index == int(np.flatnonzero(x)[0])
        assert result.estimate == -5

    def test_mismatched_seed_rejected(self):
        a = L0Sampler(64, seed=1)
        b = L0Sampler(64, seed=2)
        with pytest.raises(ValueError, match="seed: 1 != 2"):
            a.merge(b)

    def test_mismatched_universe_rejected(self):
        a = L0Sampler(64, seed=1)
        b = L0Sampler(128, seed=1)
        with pytest.raises(ValueError, match="universe"):
            a.subtract(b)

    def test_mismatched_sparsity_rejected(self):
        a = L0Sampler(64, seed=1, sparsity=4)
        b = L0Sampler(64, seed=1, sparsity=6)
        with pytest.raises(ValueError, match="sparsity: 4 != 6"):
            a.merge(b)

    def test_mismatched_mode_rejected(self):
        a = L0Sampler(64, seed=1, mode="kwise")
        b = L0Sampler(64, seed=1, mode="nisan")
        with pytest.raises(ValueError, match="mode"):
            a.merge(b)

    def test_wrong_type_rejected_with_clear_error(self):
        a = L0Sampler(64, seed=1)
        with pytest.raises(ValueError, match="type: L0Sampler != int"):
            a.merge(7)

    def test_error_lists_every_mismatch(self):
        a = L0Sampler(64, seed=1, sparsity=4)
        b = L0Sampler(128, seed=2, sparsity=6)
        with pytest.raises(ValueError) as excinfo:
            a.merge(b)
        message = str(excinfo.value)
        for name in ("universe", "seed", "sparsity", "levels"):
            assert name in message

    def test_matching_explicit_sparsity_merges_despite_delta(self):
        """delta only enters the map through sparsity; explicitly equal
        sparsities share a map even when the deltas differ."""
        a = L0Sampler(64, delta=0.4, seed=3, sparsity=5)
        b = L0Sampler(64, delta=0.1, seed=3, sparsity=5)
        a.update(5, 2)
        b.update(9, -1)
        a.merge(b)  # must not raise
        result = a.sample()
        assert not result.failed and result.index in (5, 9)
