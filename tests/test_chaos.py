"""Chaos properties: injected faults, healed runs, byte-identical state.

Every test drives a seeded :class:`FaultPlan` against the supervised
runtime and pins the headline invariant of the fault layer: a healed
run converges to *byte-identical* merged state against a crash-free
oracle (or, over the wire, against a serial replay of exactly the
acked batches — each applied once, in epoch order).  The schedules are
deterministic, so every failure here replays exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (RestartPolicy, ShardedPipeline, checkpoint,
                          checkpoint as snapshot_structure)
from repro.faults import (ACK_DELAY, DELTA_TRUNCATE, SHM_SLOT_CORRUPT,
                          SOCKET_DROP, WORKER_CRASH, FaultPlan)
from repro.net import (NetError, ReproClient, RetryPolicy, ServerThread,
                       SocketFollower)
from repro.service import QueryService

from _engine_cases import (SHARDABLE, SHARDABLE_IDS, EngineCase,
                           random_turnstile)

UNIVERSE = 128
POLICY = RestartPolicy(backoff_s=0.001)


def _pipeline(case: EngineCase, backend: str, *, faults=None,
              restarts=None, transport=None, shards=2, chunk=32,
              seed=5) -> ShardedPipeline:
    extra = {}
    if faults is not None:
        extra["faults"] = faults
    if restarts is not None:
        extra["restarts"] = restarts
    if transport is not None:
        extra["transport"] = transport
    return ShardedPipeline(lambda: case.factory(UNIVERSE, seed),
                           shards=shards, chunk_size=chunk,
                           backend=backend, **extra)


def _batches(count=4, length=32, seed=11):
    indices, deltas = random_turnstile(UNIVERSE, count * length, seed)
    return [(indices[k * length:(k + 1) * length],
             deltas[k * length:(k + 1) * length]) for k in range(count)]


def _merged_bytes(pipe) -> bytes:
    pipe.flush()
    return checkpoint(pipe.merged())


def _oracle_bytes(case: EngineCase, batches, **kwargs) -> bytes:
    with _pipeline(case, "serial", **kwargs) as oracle:
        for indices, deltas in batches:
            oracle.ingest(indices, deltas)
        return _merged_bytes(oracle)


# ---------------------------------------------------------------------------
# Worker crashes, both backends, every shardable registered type


@pytest.mark.parametrize("backend", ["serial", "process"])
@pytest.mark.parametrize("case", SHARDABLE, ids=SHARDABLE_IDS)
class TestCrashConvergence:
    def test_healed_run_is_byte_identical_to_crash_free(
            self, case, backend):
        """Two mid-stream crashes, healed from checkpoint + replay:
        the merged state converges to the crash-free bytes (replay is
        bit-exact, so this holds even for float-state structures)."""
        batches = _batches()
        want = _oracle_bytes(case, batches)

        plan = FaultPlan(seed=5, at={WORKER_CRASH: (2, 7)})
        with _pipeline(case, backend, faults=plan,
                       restarts=POLICY) as pipe:
            for indices, deltas in batches:
                pipe.ingest(indices, deltas)
            # flush first: crash detection is lazy for process pools
            # (the poison pill surfaces on the next queue round-trip)
            assert _merged_bytes(pipe) == want
            assert pipe.worker_restarts == 2
            assert pipe.healthy
        assert plan.schedule() == ((WORKER_CRASH, 2), (WORKER_CRASH, 7))


# ---------------------------------------------------------------------------
# Shared-memory transport: corrupted slot descriptors


class TestShmCorruption:
    CASE = SHARDABLE[0]                                  # CountSketch

    def test_corrupt_slot_heals_byte_identical(self):
        batches = _batches()
        want = _oracle_bytes(self.CASE, batches)

        plan = FaultPlan(seed=5, at={SHM_SLOT_CORRUPT: (3,)})
        with _pipeline(self.CASE, "process", transport="shm",
                       faults=plan, restarts=POLICY) as pipe:
            for indices, deltas in batches:
                pipe.ingest(indices, deltas)
            assert _merged_bytes(pipe) == want
            assert pipe.worker_restarts == 1
            assert pipe.healthy
        assert plan.schedule() == ((SHM_SLOT_CORRUPT, 3),)


# ---------------------------------------------------------------------------
# Schedule replay: one seed, two runs, identical everything


class TestScheduleReplay:
    CASE = SHARDABLE[0]

    def _run(self, seed):
        plan = FaultPlan(seed=seed, rates={WORKER_CRASH: 0.25})
        policy = RestartPolicy(max_restarts=64, backoff_s=0.0005)
        with _pipeline(self.CASE, "serial", faults=plan,
                       restarts=policy) as pipe:
            for indices, deltas in _batches(count=6):
                pipe.ingest(indices, deltas)
            return (plan.schedule(), pipe.worker_restarts,
                    _merged_bytes(pipe))

    def test_same_seed_replays_identically(self):
        first_schedule, first_restarts, first_bytes = self._run(19)
        again_schedule, again_restarts, again_bytes = self._run(19)
        assert first_schedule == again_schedule
        assert first_restarts == again_restarts
        assert first_bytes == again_bytes
        assert first_restarts >= 1          # the rate actually fired
        # ... and the healed state still matches the crash-free oracle.
        assert first_bytes == _oracle_bytes(self.CASE,
                                            _batches(count=6))


# ---------------------------------------------------------------------------
# Socket chaos: drops, delayed acks, truncated deltas


def _service(shards=2):
    case = SHARDABLE[0]
    return QueryService(_pipeline(case, "serial", shards=shards),
                        refresh_every=1)


def _fast_retry(**overrides) -> RetryPolicy:
    kwargs = dict(attempts=5, base_s=0.01, max_s=0.05, deadline_s=30.0,
                  seed=2)
    kwargs.update(overrides)
    return RetryPolicy(**kwargs)


class TestSocketChaos:
    def test_dropped_sends_with_retry_match_acked_replay(self):
        """Client-side connection drops mid-send: the retrying client
        re-submits, the epoch chain stays gapless and the daemon state
        equals a serial replay of exactly the acked batches."""
        batches = _batches(count=6, length=48)
        plan = FaultPlan(seed=5, at={SOCKET_DROP: (2, 5)})
        acks = []
        with _service() as svc, ServerThread(svc) as server:
            with ReproClient(server.host, server.port, timeout=5.0,
                             retry=_fast_retry(),
                             faults=plan) as client:
                for indices, deltas in batches:
                    reply = client.ingest(indices, deltas)
                    acks.append((reply.result["epoch_before"],
                                 reply.result["epoch"]))
                wire = client.checkpoint()
            assert len(plan.schedule()) == 2

        # Gapless ack chain covering every batch exactly once.
        assert acks[0][0] == 0
        for (_, prev_end), (start, _) in zip(acks, acks[1:]):
            assert start == prev_end
        assert acks[-1][1] == sum(len(i) for i, _ in batches)

        want = _oracle_bytes(SHARDABLE[0], batches)
        with ShardedPipeline.restore(wire) as restored:
            assert _merged_bytes(restored) == want

    def test_delayed_ack_dedup_applies_each_batch_once(self):
        """A delayed ack times the client out; the retry replays the
        same rid and the server answers from its dedup window instead
        of double-applying the batch."""
        batches = _batches(count=4, length=48)
        server_plan = FaultPlan(seed=5, at={ACK_DELAY: (2,)},
                                ack_delay_s=0.6)
        acks = []
        with _service() as svc, \
                ServerThread(svc, faults=server_plan) as server:
            with ReproClient(server.host, server.port, timeout=0.2,
                             retry=_fast_retry()) as client:
                for indices, deltas in batches:
                    reply = client.ingest(indices, deltas)
                    acks.append((reply.result["epoch_before"],
                                 reply.result["epoch"],
                                 reply.result.get("deduped", False)))
                wire = client.checkpoint()

        assert any(deduped for _, _, deduped in acks)
        assert acks[0][0] == 0
        for (_, prev_end, _), (start, _, _) in zip(acks, acks[1:]):
            assert start == prev_end
        assert acks[-1][1] == sum(len(i) for i, _ in batches)

        want = _oracle_bytes(SHARDABLE[0], batches)
        with ShardedPipeline.restore(wire) as restored:
            assert _merged_bytes(restored) == want

    def test_truncated_delta_resyncs_the_follower(self):
        """A truncated replication frame kills that subscription; the
        follower resyncs from a fresh base and still converges to the
        leader's exact bytes."""
        batches = _batches(count=3, length=48)
        server_plan = FaultPlan(seed=5, at={DELTA_TRUNCATE: (2,)})
        total = sum(len(i) for i, _ in batches)
        with _service() as svc, \
                ServerThread(svc, faults=server_plan) as server:
            with ReproClient(server.host, server.port) as client, \
                    SocketFollower(server.host, server.port) as follower:
                for indices, deltas in batches:
                    client.ingest(indices, deltas)
                follower.wait_for_epoch(total, timeout=30)
                assert follower.resyncs == 1
                assert follower.epoch == total
                svc.pipeline.flush()
                assert snapshot_structure(follower.merged()) \
                    == snapshot_structure(svc.pipeline.merged())

    def test_resync_disabled_surfaces_the_failure(self):
        batches = _batches(count=3, length=48)
        server_plan = FaultPlan(seed=5, at={DELTA_TRUNCATE: (2,)})
        with _service() as svc, \
                ServerThread(svc, faults=server_plan) as server:
            with ReproClient(server.host, server.port) as client, \
                    SocketFollower(server.host, server.port,
                                   resync=False) as follower:
                for indices, deltas in batches:
                    client.ingest(indices, deltas)
                with pytest.raises((ConnectionError, TimeoutError)):
                    follower.wait_for_epoch(
                        sum(len(i) for i, _ in batches), timeout=2)
                assert follower.resyncs == 0


# ---------------------------------------------------------------------------
# Degraded serving over the wire


class TestDegradedServing:
    def test_degraded_service_answers_and_reports(self):
        """A poisoned pipeline (no supervision, no auto-recovery)
        degrades the daemon: health says so, ingest answers the typed
        retryable error, queries still serve from the last good
        snapshot."""
        case = SHARDABLE[0]
        batches = _batches(count=2, length=48)
        # each 48-update batch is 2 chunks x 2 shards = 4 crash-site
        # visits; visit 6 lands in the second batch
        plan = FaultPlan(seed=5, at={WORKER_CRASH: (6,)})
        pipeline = _pipeline(case, "serial", faults=plan)
        service = QueryService(pipeline, refresh_every=1,
                               auto_recover=False)
        with service as svc, ServerThread(svc) as server:
            with ReproClient(server.host, server.port,
                             retry=_fast_retry(attempts=1)) as client:
                client.ingest(*batches[0])
                with pytest.raises(NetError) as exc:
                    client.ingest(*batches[1])
                assert exc.value.error == "ServiceDegraded"
                health = client.health()
                assert health["status"] == "degraded"
                assert "WorkerCrashed" in health["reason"]
                assert client.ready() is False
                # Queries still answer, pinned to the last good epoch.
                answer = client.query("top", count=2)
                assert answer.epoch == len(batches[0][0])
                assert svc.stats.degraded_queries >= 1

    def test_auto_recovering_daemon_flips_back_to_serving(self):
        """With auto-recovery on (the default), the same crash heals
        inside the ingest call: every batch acks, the daemon stays
        'serving' and the final bytes match the crash-free oracle."""
        case = SHARDABLE[0]
        batches = _batches(count=4, length=48)
        plan = FaultPlan(seed=5, at={WORKER_CRASH: (6,)})
        pipeline = _pipeline(case, "serial", faults=plan)
        with QueryService(pipeline, refresh_every=1) as svc, \
                ServerThread(svc) as server:
            with ReproClient(server.host, server.port,
                             retry=_fast_retry()) as client:
                for indices, deltas in batches:
                    client.ingest(indices, deltas)
                assert client.health()["status"] == "serving"
                wire = client.checkpoint()
            assert svc.stats.recoveries == 1

        want = _oracle_bytes(case, batches)
        with ShardedPipeline.restore(wire) as restored:
            assert _merged_bytes(restored) == want
