"""Shared fixtures and helpers for the test suite.

Statistical tests use fixed seeds so the suite is deterministic; the
tolerances are set wide enough that the pinned seeds are not
cherry-picked (changing a seed should almost always still pass — the
property tests in test_properties.py rotate seeds to back this up).
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def apply_vector(sketch, vector, seed=0, shuffle=True):
    """Feed a dense vector to a sketch as a shuffled turnstile stream."""
    from repro.streams import vector_to_stream

    vector_to_stream(vector, seed=seed, shuffle=shuffle).apply_to(sketch)
    return sketch


def empirical_distribution(results, universe):
    """Histogram of successful sample indices, normalised."""
    counts = np.zeros(universe, dtype=np.float64)
    successes = 0
    for result in results:
        if not result.failed:
            counts[result.index] += 1
            successes += 1
    if successes == 0:
        return counts, 0
    return counts / successes, successes
