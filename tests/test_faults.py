"""Fault plans, supervised restart and degraded serving (unit level).

The cross-product chaos property suite lives in ``test_chaos.py``;
this file pins the building blocks: :class:`FaultPlan` determinism and
validation, serial-backend supervision (heal = checkpoint + replay,
escalation when the budget is spent), the client retry policy's
deterministic backoff, and the service-level degrade/recover
lifecycle.  The follower's monotonic wait deadline is pinned next to
the other socket tests in ``test_net_server.py``.
"""

from __future__ import annotations

import pytest

from repro.engine import (RestartPolicy, ShardedPipeline, WorkerCrashed,
                          checkpoint)
from repro.faults import (ACK_DELAY, NO_FAULTS, SITES, SOCKET_DROP,
                          WORKER_CRASH, FaultPlan, NoFaults)
from repro.net import RetryPolicy
from repro.service import QueryService, ServiceDegraded
from repro.sketch import CountSketch

from _engine_cases import random_turnstile


def _factory(seed=3):
    return lambda: CountSketch(1 << 10, m=6, rows=5, seed=seed)


def _batches(count=5, length=200, seed=1):
    idx, dlt = random_turnstile(1 << 10, count * length, seed)
    return [(idx[k * length:(k + 1) * length],
             dlt[k * length:(k + 1) * length]) for k in range(count)]


def _merged_bytes(pipe) -> bytes:
    pipe.flush()
    return checkpoint(pipe.merged())


# ---------------------------------------------------------------------------
# FaultPlan


class TestFaultPlan:
    def test_at_schedule_fires_exactly_at_those_visits(self):
        plan = FaultPlan(seed=0, at={WORKER_CRASH: (2, 5)})
        fires = [plan.maybe_fire(WORKER_CRASH) for _ in range(6)]
        assert fires == [False, True, False, False, True, False]
        assert plan.schedule() == ((WORKER_CRASH, 2), (WORKER_CRASH, 5))

    def test_rate_schedule_replays_identically(self):
        def drive(plan):
            for _ in range(500):
                plan.maybe_fire(SOCKET_DROP)
                plan.maybe_fire(ACK_DELAY)
            return plan.schedule()

        first = drive(FaultPlan(seed=7, rates={SOCKET_DROP: 0.05,
                                               ACK_DELAY: 0.02}))
        second = drive(FaultPlan(seed=7, rates={SOCKET_DROP: 0.05,
                                                ACK_DELAY: 0.02}))
        assert first == second
        assert any(site == SOCKET_DROP for site, _ in first)
        # a different seed decoheres the schedule
        third = drive(FaultPlan(seed=8, rates={SOCKET_DROP: 0.05,
                                               ACK_DELAY: 0.02}))
        assert first != third

    def test_per_site_streams_are_independent(self):
        """Adding a second rate site never perturbs the first site's
        draws (streams are keyed on the site's fixed index)."""
        def drops(plan):
            return [plan.maybe_fire(SOCKET_DROP) for _ in range(200)]

        alone = drops(FaultPlan(seed=3, rates={SOCKET_DROP: 0.1}))
        paired = drops(FaultPlan(seed=3, rates={SOCKET_DROP: 0.1,
                                                ACK_DELAY: 0.5}))
        assert alone == paired

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(rates={"bogus.site": 0.1})
        with pytest.raises(ValueError, match="both a rate and"):
            FaultPlan(rates={ACK_DELAY: 0.1}, at={ACK_DELAY: (1,)})
        with pytest.raises(ValueError, match="in \\[0, 1\\]"):
            FaultPlan(rates={ACK_DELAY: 1.5})
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan(at={ACK_DELAY: (0,)})
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan().maybe_fire("bogus.site")

    def test_no_faults_is_inert(self):
        assert NO_FAULTS.active is False
        assert all(NO_FAULTS.maybe_fire(site) is False for site in SITES)
        assert isinstance(NO_FAULTS, NoFaults)


# ---------------------------------------------------------------------------
# Serial-backend supervision


class TestSerialSupervision:
    def test_heal_is_byte_identical_to_crash_free(self):
        batches = _batches()
        with ShardedPipeline(_factory(), shards=3, chunk_size=64) \
                as oracle:
            for idx, dlt in batches:
                oracle.ingest(idx, dlt)
            want = _merged_bytes(oracle)

        plan = FaultPlan(seed=5, at={WORKER_CRASH: (3, 11)})
        with ShardedPipeline(_factory(), shards=3, chunk_size=64,
                             faults=plan,
                             restarts=RestartPolicy(backoff_s=0.001)) \
                as pipe:
            for idx, dlt in batches:
                pipe.ingest(idx, dlt)
            assert pipe.worker_restarts == 2
            assert pipe.healthy
            assert _merged_bytes(pipe) == want
        assert plan.schedule() == ((WORKER_CRASH, 3), (WORKER_CRASH, 11))

    def test_unsupervised_crash_escalates_immediately(self):
        plan = FaultPlan(seed=5, at={WORKER_CRASH: (1,)})
        with ShardedPipeline(_factory(), shards=2, chunk_size=64,
                             faults=plan) as pipe:
            with pytest.raises(WorkerCrashed, match="supervision is off"):
                pipe.ingest(*_batches(count=1)[0])
            assert not pipe.healthy

    def test_exhausted_budget_poisons_the_pipeline(self):
        plan = FaultPlan(seed=5, at={WORKER_CRASH: (1, 2, 3)})
        policy = RestartPolicy(max_restarts=2, backoff_s=0.001)
        with ShardedPipeline(_factory(), shards=1, chunk_size=64,
                             faults=plan, restarts=policy) as pipe:
            with pytest.raises(WorkerCrashed,
                               match="restart budget is spent"):
                pipe.ingest(*_batches(count=1)[0])
            assert not pipe.healthy
            assert pipe.worker_restarts == 2

    def test_restart_policy_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            RestartPolicy(backoff_s=-0.1)
        with pytest.raises(ValueError):
            RestartPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RestartPolicy(log_limit=0)
        policy = RestartPolicy(backoff_s=0.01, backoff_factor=2.0)
        assert policy.delay(0) == pytest.approx(0.01)
        assert policy.delay(2) == pytest.approx(0.04)

    def test_restarts_survive_a_reshard(self):
        plan = FaultPlan(seed=5, at={WORKER_CRASH: (2,)})
        with ShardedPipeline(_factory(), shards=2, chunk_size=64,
                             faults=plan,
                             restarts=RestartPolicy(backoff_s=0.001)) \
                as pipe:
            pipe.ingest(*_batches(count=1)[0])
            assert pipe.worker_restarts == 1
            pipe.reshard(3)
            assert pipe.worker_restarts == 1   # carried across pools


# ---------------------------------------------------------------------------
# Client retry policy


class TestRetryPolicy:
    def test_delays_replay_under_one_seed(self):
        a = RetryPolicy(seed=9, base_s=0.05, factor=2.0, jitter=0.5)
        b = RetryPolicy(seed=9, base_s=0.05, factor=2.0, jitter=0.5)
        assert [a.delay(k) for k in range(5)] \
            == [b.delay(k) for k in range(5)]
        c = RetryPolicy(seed=10, base_s=0.05, factor=2.0, jitter=0.5)
        assert [a.delay(k) for k in range(5)] \
            != [c.delay(k) for k in range(5)]

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(seed=0, base_s=0.1, factor=2.0, max_s=0.3,
                             jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(5) == pytest.approx(0.3)     # capped

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)

    def test_service_degraded_is_retried_by_default(self):
        assert "ServiceDegraded" in RetryPolicy().retry_errors


# ---------------------------------------------------------------------------
# Degraded serving and self-healing


class TestDegradedService:
    def test_auto_recovery_is_byte_identical(self):
        batches = _batches(count=6)
        with ShardedPipeline(_factory(), shards=2, chunk_size=64) \
                as oracle:
            for idx, dlt in batches:
                oracle.ingest(idx, dlt)
            want = _merged_bytes(oracle)

        plan = FaultPlan(seed=5, at={WORKER_CRASH: (9,)})
        pipe = ShardedPipeline(_factory(), shards=2, chunk_size=64,
                               faults=plan)          # no supervision
        with QueryService(pipe, refresh_every=1) as service:
            for idx, dlt in batches:
                service.ingest(idx, dlt)
                service.current()         # snapshot at the ack boundary
            assert service.status == ("ok", None)
            assert service.stats.recoveries == 1
            assert service.stats.errors == 1
            assert _merged_bytes(service.pipeline) == want

    def test_degraded_lifecycle_and_manual_recovery(self):
        batches = _batches(count=2)
        plan = FaultPlan(seed=5, at={WORKER_CRASH: (2,)})
        pipe = ShardedPipeline(_factory(), shards=2, chunk_size=64,
                               faults=plan)
        with QueryService(pipe, refresh_every=None,
                          auto_recover=False) as service:
            with pytest.raises(ServiceDegraded) as err:
                service.ingest(*batches[0])
            assert err.value.retryable is True
            status, reason = service.status
            assert status == "degraded" and "WorkerCrashed" in reason
            # queries still answer, from the newest good snapshot
            snap = service.serving_snapshot()
            assert snap.epoch == 0
            assert service.stats.degraded_queries == 1
            assert isinstance(service.query("point", index=0), float)
            # ingest keeps refusing with the typed retryable error
            with pytest.raises(ServiceDegraded):
                service.ingest(*batches[1])
            # manual recovery flips back to ok and accepts writes
            assert service.recover() is True
            assert service.status == ("ok", None)
            assert service.ingest(*batches[0]) == batches[0][0].size

    def test_recovery_never_rolls_back_acked_epochs(self):
        """No snapshot at the last good epoch -> stay degraded (a
        rebuild from an older snapshot would silently lose acks)."""
        batches = _batches(count=3)
        plan = FaultPlan(seed=5, at={WORKER_CRASH: (9,)})
        pipe = ShardedPipeline(_factory(), shards=2, chunk_size=64,
                               faults=plan)
        with QueryService(pipe, refresh_every=None) as service:
            service.ingest(*batches[0])     # acked, but never snapshot
            with pytest.raises(ServiceDegraded):
                service.ingest(*batches[1])
            assert service.status[0] == "degraded"
            assert service.stats.recoveries == 0

    def test_stats_expose_the_fault_counters(self):
        report = QueryService(
            ShardedPipeline(_factory(), shards=1)).stats.to_dict()
        for key in ("errors", "degraded_queries", "recoveries",
                    "worker_restarts"):
            assert report[key] == 0
