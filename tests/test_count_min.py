"""Unit tests for count-min / count-median (sketch/count_min.py)."""

import numpy as np
import pytest

from repro.sketch.count_min import CountMin
from repro.streams import vector_to_stream, zipf_vector

from conftest import apply_vector


class TestCountMin:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CountMin(10, buckets=0, rows=3)
        with pytest.raises(ValueError):
            CountMin(10, buckets=4, rows=0)

    def test_never_underestimates_strict_turnstile(self):
        n = 500
        vec = zipf_vector(n, scale=1000, seed=1)  # non-negative
        cm = CountMin(n, buckets=64, rows=7, seed=1)
        apply_vector(cm, vec, seed=1)
        estimates = cm.estimate_many(np.arange(n))
        assert np.all(estimates >= vec)

    def test_overestimate_bounded_by_l1_over_buckets(self):
        n, buckets = 500, 128
        vec = zipf_vector(n, scale=1000, seed=2)
        cm = CountMin(n, buckets=buckets, rows=9, seed=2)
        apply_vector(cm, vec, seed=2)
        estimates = cm.estimate_many(np.arange(n))
        slack = 4.0 * vec.sum() / buckets  # markov bound with slack
        assert np.all(estimates - vec <= slack)

    def test_exact_when_no_collisions_possible(self):
        cm = CountMin(4, buckets=64, rows=5, seed=3)
        cm.update(0, 10)
        cm.update(1, 20)
        # with 4 keys in 64 buckets collisions in all 5 rows are unlikely
        assert cm.estimate(0) == 10
        assert cm.estimate(1) == 20

    def test_handles_deletions(self):
        cm = CountMin(100, buckets=32, rows=5, seed=4)
        cm.update(7, 10)
        cm.update(7, -4)
        assert cm.estimate(7) == 6


class TestCountMedian:
    def test_median_close_in_general_model(self):
        """With signed updates count-min breaks but count-median holds."""
        n = 400
        rng = np.random.default_rng(5)
        vec = rng.integers(-20, 21, size=n)
        cm = CountMin(n, buckets=256, rows=11, seed=5)
        apply_vector(cm, vec, seed=5)
        med = cm.estimate_median_many(np.arange(n))
        err = np.abs(med - vec)
        assert np.median(err) <= 8.0
        assert err.max() <= 40.0

    def test_single_key(self):
        cm = CountMin(100, buckets=32, rows=5, seed=6)
        cm.update(50, -7)
        assert cm.estimate_median(50) == pytest.approx(-7)


class TestLinearity:
    def test_merge(self):
        a = CountMin(100, buckets=16, rows=5, seed=7)
        b = CountMin(100, buckets=16, rows=5, seed=7)
        a.update(1, 5)
        b.update(1, 7)
        a.merge(b)
        assert a.estimate(1) == 12

    def test_subtract_to_zero(self):
        a = CountMin(100, buckets=16, rows=5, seed=8)
        b = CountMin(100, buckets=16, rows=5, seed=8)
        vec = zipf_vector(100, seed=9)
        apply_vector(a, vec, seed=1)
        apply_vector(b, vec, seed=2)
        a.subtract(b)
        assert not a.table.any()

    def test_incompatible_rejected(self):
        a = CountMin(100, buckets=16, rows=5, seed=1)
        b = CountMin(100, buckets=32, rows=5, seed=1)
        with pytest.raises(ValueError):
            a.merge(b)


class TestBatchEstimates:
    def _loaded(self, n=5000):
        cm = CountMin(n, buckets=64, rows=5, seed=2)
        rng = np.random.default_rng(7)
        idx = rng.integers(0, n, size=4000, dtype=np.int64)
        dlt = rng.integers(1, 9, size=4000, dtype=np.int64)
        cm.update_many(idx, dlt)
        return cm

    def test_estimate_many_matches_pointwise(self):
        cm = self._loaded()
        everyone = np.arange(cm.universe, dtype=np.int64)
        batch = cm.estimate_many(everyone)
        assert batch.dtype == np.int64
        sample = np.arange(0, cm.universe, 97)
        assert all(batch[i] == cm.estimate(int(i)) for i in sample)

    def test_estimate_median_many_matches_pointwise(self):
        cm = self._loaded()
        everyone = np.arange(cm.universe, dtype=np.int64)
        batch = cm.estimate_median_many(everyone)
        assert batch.dtype == np.float64
        sample = np.arange(0, cm.universe, 97)
        assert all(batch[i] == cm.estimate_median(int(i))
                   for i in sample)

    def test_chunking_is_invisible(self, monkeypatch):
        """Answers must not depend on the estimate block size — the
        full-universe heavy-hitter sweep runs through these chunks."""
        from repro.sketch import count_min as module

        cm = self._loaded(n=1000)
        everyone = np.arange(cm.universe, dtype=np.int64)
        whole = cm.estimate_many(everyone)
        whole_med = cm.estimate_median_many(everyone)
        monkeypatch.setattr(module, "_ESTIMATE_BLOCK", 37)
        assert np.array_equal(cm.estimate_many(everyone), whole)
        assert np.array_equal(cm.estimate_median_many(everyone),
                              whole_med)

    def test_scalar_shape_preserved(self):
        cm = self._loaded(n=100)
        assert cm.estimate_many(np.int64(3)).shape == ()


class TestSpace:
    def test_report_counts(self):
        cm = CountMin(1000, buckets=20, rows=6)
        assert cm.space_report().counter_count == 120
