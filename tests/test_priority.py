"""Tests for priority sampling (core/priority.py, related-work [11])."""

import numpy as np
import pytest

from repro.core.priority import PrioritySampler


class TestBasics:
    def test_rejects_k_zero(self):
        with pytest.raises(ValueError):
            PrioritySampler(100, k=0)

    def test_rejects_negative_updates(self):
        sampler = PrioritySampler(100, k=3, seed=1)
        with pytest.raises(ValueError):
            sampler.update(5, -1)
        with pytest.raises(ValueError):
            sampler.update(5, 0)

    def test_keeps_at_most_k_plus_one(self):
        sampler = PrioritySampler(1000, k=5, seed=2)
        for i in range(100):
            sampler.update(i, 1 + i % 7)
        assert len(sampler._weights) <= 6
        assert len(sampler.sample()) == 5

    def test_small_streams_kept_exactly(self):
        sampler = PrioritySampler(100, k=10, seed=3)
        sampler.update(4, 2.0)
        sampler.update(9, 5.0)
        kept = dict(sampler.sample())
        assert kept == {4: 2.0, 9: 5.0}
        assert sampler.threshold() == 0.0

    def test_repeated_items_accumulate(self):
        sampler = PrioritySampler(100, k=4, seed=4)
        sampler.update(7, 3.0)
        sampler.update(7, 4.0)
        assert dict(sampler.sample())[7] == pytest.approx(7.0)


class TestSubsetSums:
    def test_exact_when_everything_fits(self):
        sampler = PrioritySampler(100, k=10, seed=5)
        weights = {1: 4.0, 2: 6.0, 3: 10.0}
        for i, w in weights.items():
            sampler.update(i, w)
        assert sampler.subset_sum_estimate([1, 2]) == pytest.approx(10.0)
        assert sampler.subset_sum_estimate([3]) == pytest.approx(10.0)
        assert sampler.subset_sum_estimate([50]) == 0.0

    def test_unbiased_over_randomness(self):
        """E[W_hat(S)] = W(S): average many independent samplers."""
        rng = np.random.default_rng(6)
        n = 60
        weights = rng.integers(1, 20, size=n).astype(float)
        subset = list(range(0, n, 3))
        truth = float(weights[subset].sum())
        estimates = []
        for seed in range(400):
            sampler = PrioritySampler(n, k=12, seed=seed)
            order = rng.permutation(n)
            for i in order:
                sampler.update(int(i), float(weights[i]))
            estimates.append(sampler.subset_sum_estimate(subset))
        mean = float(np.mean(estimates))
        assert mean == pytest.approx(truth, rel=0.1)

    def test_heavy_items_always_kept(self):
        """An item with most of the mass has the top priority whp."""
        kept_count = 0
        for seed in range(30):
            sampler = PrioritySampler(200, k=5, seed=seed)
            sampler.update(7, 10_000.0)
            for i in range(50):
                sampler.update(100 + i, 1.0)
            if 7 in dict(sampler.sample()):
                kept_count += 1
        assert kept_count >= 28


class TestRelationToPrecisionSampling:
    def test_priorities_are_the_figure1_scaling(self):
        """q_i = w_i / u_i is z_i = x_i / t_i at p = 1 — the lineage the
        paper's related-work section draws."""
        sampler = PrioritySampler(100, k=3, seed=7)
        sampler.update(5, 10.0)
        u = float(sampler._rng.uniform(np.array([5], np.uint64))[0])
        assert sampler._priority(5, 10.0) == pytest.approx(10.0 / u)

    def test_space_constant_in_universe(self):
        small = PrioritySampler(100, k=8)
        large = PrioritySampler(10**6, k=8)
        assert small.space_report().counter_count \
            == large.space_report().counter_count
