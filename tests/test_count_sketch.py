"""Unit tests for the count-sketch (sketch/count_sketch.py) — Lemma 1."""

import numpy as np
import pytest

from repro.sketch.count_sketch import CountSketch, err_m2, rows_for_universe
from repro.streams import vector_to_stream, zipf_vector

from conftest import apply_vector


class TestErrM2:
    def test_zero_for_sparse_vector(self):
        vec = np.zeros(100)
        vec[3] = 7
        assert err_m2(vec, 1) == 0.0

    def test_m_at_least_n(self):
        assert err_m2(np.arange(10), 10) == 0.0

    def test_tail_only(self):
        vec = np.array([100, 3, 4, 0])
        # best 1-sparse keeps the 100; the tail is (3, 4)
        assert err_m2(vec, 1) == pytest.approx(5.0)

    def test_monotone_in_m(self):
        vec = zipf_vector(200, seed=1).astype(np.float64)
        errs = [err_m2(vec, m) for m in (1, 5, 20, 100)]
        assert errs == sorted(errs, reverse=True)


class TestBasics:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CountSketch(10, m=0, rows=3)
        with pytest.raises(ValueError):
            CountSketch(10, m=2, rows=0)

    def test_buckets_are_six_m(self):
        cs = CountSketch(100, m=7, rows=3)
        assert cs.buckets == 42

    def test_exact_on_very_sparse_input(self):
        cs = CountSketch(1000, m=10, rows=9, seed=1)
        cs.update(42, 5)
        cs.update(42, -2)
        assert cs.estimate(42) == pytest.approx(3.0)

    def test_estimate_many_matches_single(self):
        cs = CountSketch(100, m=5, rows=7, seed=2)
        cs.update_many(np.arange(20), np.arange(20) + 1.0)
        singles = [cs.estimate(i) for i in range(30)]
        batch = cs.estimate_many(np.arange(30))
        assert np.allclose(singles, batch)

    def test_estimate_all_shape(self):
        cs = CountSketch(64, m=4, rows=5, seed=3)
        assert cs.estimate_all().shape == (64,)

    def test_deterministic_given_seed(self):
        a = CountSketch(100, m=5, rows=7, seed=9)
        b = CountSketch(100, m=5, rows=7, seed=9)
        a.update(3, 10)
        b.update(3, 10)
        assert np.array_equal(a.table, b.table)


class TestLemma1:
    """The per-coordinate error bound |x_i - x*_i| <= Err^m_2(x)/sqrt(m)."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_error_bound_zipf(self, seed):
        n, m = 1500, 20
        vec = zipf_vector(n, scale=5000, seed=seed)
        cs = apply_vector(CountSketch(n, m=m, rows=13, seed=seed), vec,
                          seed=seed)
        worst = np.abs(cs.estimate_all() - vec).max()
        assert worst <= err_m2(vec, m) / np.sqrt(m) * 1.5  # slack for whp

    def test_heavy_coordinates_do_not_pollute(self):
        """A giant coordinate must not degrade other estimates — the tail
        bound (not ||x||_2) governs the error; this is the paper's key
        advantage over the AKO analysis."""
        n, m = 1000, 10
        vec = np.zeros(n, dtype=np.int64)
        vec[7] = 10**6
        vec[100:200] = 3
        cs = apply_vector(CountSketch(n, m=m, rows=13, seed=5), vec, seed=5)
        estimates = cs.estimate_all()
        assert abs(estimates[7] - 10**6) <= err_m2(vec, m) / np.sqrt(m) * 1.5
        others = np.delete(np.abs(estimates - vec), 7)
        assert others.max() <= err_m2(vec, m) / np.sqrt(m) * 1.5

    def test_sparse_approximation_error_sandwich(self):
        """Err^m_2(x) <= ||x - xhat||_2 <= 10 Err^m_2(x) (Lemma 1)."""
        n, m = 1200, 15
        vec = zipf_vector(n, scale=3000, seed=7)
        cs = apply_vector(CountSketch(n, m=m, rows=13, seed=7), vec, seed=7)
        idx, vals = cs.best_sparse_approximation()
        xhat = np.zeros(n)
        xhat[idx] = vals
        dist = np.linalg.norm(vec - xhat)
        truth = err_m2(vec, m)
        assert truth <= dist + 1e-9
        assert dist <= 10.0 * truth


class TestRecoveryHelpers:
    def test_best_sparse_has_m_entries(self):
        cs = CountSketch(100, m=5, rows=7, seed=1)
        cs.update_many(np.arange(50), np.ones(50))
        idx, vals = cs.best_sparse_approximation()
        assert idx.size == 5 and vals.size == 5

    def test_heaviest_index_finds_planted(self):
        n = 500
        cs = CountSketch(n, m=5, rows=9, seed=2)
        vec = np.zeros(n, dtype=np.int64)
        vec[123] = 1000
        vec[200:260] = 2
        apply_vector(cs, vec, seed=2)
        index, estimate = cs.heaviest_index()
        assert index == 123
        assert estimate == pytest.approx(1000, rel=0.1)


class TestLinearity:
    def test_merge_equals_joint_stream(self):
        n = 200
        a = CountSketch(n, m=5, rows=7, seed=4)
        b = CountSketch(n, m=5, rows=7, seed=4)
        joint = CountSketch(n, m=5, rows=7, seed=4)
        va = zipf_vector(n, seed=1)
        vb = zipf_vector(n, seed=2)
        apply_vector(a, va, seed=1)
        apply_vector(b, vb, seed=2)
        apply_vector(joint, va, seed=3)
        apply_vector(joint, vb, seed=4)
        a.merge(b)
        assert np.allclose(a.table, joint.table)

    def test_subtract_cancels(self):
        n = 200
        a = CountSketch(n, m=5, rows=7, seed=4)
        b = CountSketch(n, m=5, rows=7, seed=4)
        vec = zipf_vector(n, seed=3)
        apply_vector(a, vec, seed=5)
        apply_vector(b, vec, seed=6)
        a.subtract(b)
        assert np.allclose(a.table, 0.0)

    def test_merge_rejects_different_seed(self):
        a = CountSketch(100, m=5, rows=7, seed=1)
        b = CountSketch(100, m=5, rows=7, seed=2)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_rejects_different_m(self):
        a = CountSketch(100, m=5, rows=7, seed=1)
        b = CountSketch(100, m=6, rows=7, seed=1)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_copy_is_independent(self):
        a = CountSketch(100, m=5, rows=7, seed=1)
        a.update(3, 4)
        b = a.copy()
        b.update(3, 4)
        assert a.estimate(3) == pytest.approx(4.0)
        assert b.estimate(3) == pytest.approx(8.0)


class TestSpace:
    def test_counter_count(self):
        cs = CountSketch(1 << 12, m=8, rows=10)
        report = cs.space_report()
        assert report.counter_count == 10 * 48

    def test_rows_for_universe_monotone(self):
        assert rows_for_universe(1 << 20) > rows_for_universe(1 << 8)

    def test_space_grows_log_squared(self):
        """counters * bits ~ m log^2 n: quadruple n, bits grow ~ (log ratio)^2."""
        small = CountSketch(1 << 8, m=8, rows=rows_for_universe(1 << 8))
        large = CountSketch(1 << 16, m=8, rows=rows_for_universe(1 << 16))
        ratio = large.space_report().counter_total \
            / small.space_report().counter_total
        assert 2.0 < ratio < 8.0  # (16/8)^2 = 4 modulo rounding
