"""Tests for the related-work samplers: chain (sliding window) and
distributed min-tag sampling."""

import numpy as np
import pytest

from repro.core.distributed import DistributedSampler
from repro.core.sliding_window import ChainSampler


class TestChainSampler:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ChainSampler(10, window=0)

    def test_empty_stream_fails(self):
        sampler = ChainSampler(10, window=5, seed=1)
        assert sampler.sample().failed

    def test_single_item(self):
        sampler = ChainSampler(10, window=5, seed=2)
        sampler.append(7)
        assert sampler.sample().index == 7

    def test_sample_is_inside_window(self):
        for seed in range(20):
            sampler = ChainSampler(1000, window=10, seed=seed)
            items = np.arange(100)  # item == its position
            sampler.append_many(items)
            result = sampler.sample()
            if result.failed:
                continue  # rare chain-expiry gap, allowed by the scheme
            assert 90 <= result.index < 100  # only live items

    def test_uniform_over_window(self):
        """Each of the W live items is sampled ~uniformly."""
        window = 8
        counts = np.zeros(window)
        trials = 1500
        for seed in range(trials):
            sampler = ChainSampler(100, window=window, seed=seed)
            sampler.append_many(np.arange(40) % 100)
            result = sampler.sample()
            if not result.failed:
                counts[result.index - (40 - window)] += 1
        frequencies = counts / counts.sum()
        assert frequencies.max() < 2.2 / window
        assert frequencies.min() > 0.4 / window

    def test_turnstile_updates_rejected(self):
        sampler = ChainSampler(10, window=5, seed=3)
        with pytest.raises(ValueError):
            sampler.update(3, -1)
        with pytest.raises(ValueError):
            sampler.update(3, 2)

    def test_chain_stays_short(self):
        sampler = ChainSampler(1000, window=50, seed=4)
        worst = 0
        for t in range(2000):
            sampler.append(t % 1000)
            worst = max(worst, sampler.chain_length)
        assert worst <= 25  # O(log W) whp; generous bound


class TestDistributedSampler:
    def test_rejects_zero_sites(self):
        with pytest.raises(ValueError):
            DistributedSampler(10, sites=0)

    def test_empty_fails(self):
        sampler = DistributedSampler(10, sites=3, seed=1)
        assert sampler.sample().failed

    def test_sample_comes_from_observed_items(self):
        sampler = DistributedSampler(100, sites=4, seed=2)
        rng = np.random.default_rng(2)
        items = rng.integers(0, 100, size=200)
        sites = rng.integers(0, 4, size=200)
        sampler.observe_many(sites, items)
        result = sampler.sample()
        assert result.index in set(items.tolist())

    def test_uniform_over_union(self):
        """Over independent runs, each distinct arrival is the sample
        with roughly equal probability (items here are all distinct)."""
        n_items = 30
        counts = np.zeros(n_items)
        for seed in range(1200):
            sampler = DistributedSampler(1000, sites=3, seed=seed)
            for item in range(n_items):
                sampler.observe(item % 3, item)
            counts[sampler.sample().index] += 1
        freq = counts / counts.sum()
        assert freq.max() < 2.5 / n_items
        assert freq.min() > 0.3 / n_items

    def test_communication_is_logarithmic(self):
        """Messages per site grow like log(arrivals), not linearly."""
        rng = np.random.default_rng(5)
        msgs = {}
        for length in (100, 10_000):
            sampler = DistributedSampler(10**6, sites=4, seed=7)
            items = rng.integers(0, 10**6, size=length)
            sites = rng.integers(0, 4, size=length)
            sampler.observe_many(sites, items)
            msgs[length] = sampler.total_messages
        # 100x more traffic must cost far less than 100x the messages
        assert msgs[10_000] < 6 * msgs[100]

    def test_broadcast_prunes(self):
        sampler = DistributedSampler(100, sites=2, seed=8,
                                     broadcast_every=1)
        for item in range(50):
            sampler.observe(item % 2, item)
        assert sampler.broadcasts > 0
        best = min(site.best_tag for site in sampler._sites)
        assert all(site.best_tag <= best + 1e-12
                   for site in sampler._sites)
