"""Cross-module integration tests.

Each scenario exercises several subsystems together the way a
downstream user would: distributed sketch merging, protocol-style
sketch shipping, end-to-end item pipelines, and the docstring examples.
"""

import doctest

import numpy as np
import pytest

import repro
from repro import (DuplicateFinder, L0Sampler, LpSampler, PerfectLpSampler,
                   lp_distribution, total_variation)
from repro.sketch import AMSSketch, CountSketch, StableSketch
from repro.streams import (UpdateStream, uniform_signed_vector,
                           vector_to_stream, zipf_vector)


class TestDistributedMerging:
    """Shard a stream over 'sites', merge sketches, query once."""

    def test_count_sketch_across_shards(self):
        n, shards = 500, 4
        vec = zipf_vector(n, scale=2000, seed=1)
        stream = vector_to_stream(vec, seed=1)
        sketches = [CountSketch(n, m=15, rows=11, seed=77)
                    for _ in range(shards)]
        for pos, (i, u) in enumerate(stream):
            sketches[pos % shards].update(i, u)
        merged = sketches[0]
        for other in sketches[1:]:
            merged.merge(other)
        joint = CountSketch(n, m=15, rows=11, seed=77)
        stream.apply_to(joint)
        assert np.allclose(merged.table, joint.table)

    def test_norm_sketch_diff_of_two_sites(self):
        """||x - y||_1 from two independently maintained sketches."""
        n = 300
        x = zipf_vector(n, scale=400, seed=2)
        y = x.copy()
        y[:50] += 7
        a = StableSketch(n, 1.0, rows=45, seed=5)
        b = StableSketch(n, 1.0, rows=45, seed=5)
        vector_to_stream(x, seed=3).apply_to(a)
        vector_to_stream(y, seed=4).apply_to(b)
        a.subtract(b)
        truth = float(np.abs(x - y).sum())
        assert a.norm_estimate() == pytest.approx(truth, rel=0.5)


class TestSamplerAgainstPerfectReference:
    def test_head_probabilities_match(self):
        """LpSampler vs PerfectLpSampler on the same stream: the heavy
        coordinates' sampling frequencies must agree within noise."""
        n = 200
        vec = np.zeros(n, dtype=np.int64)
        vec[3] = 50
        vec[90] = 25
        vec[120:160] = 1
        stream = vector_to_stream(vec, seed=6)
        hits = np.zeros(n)
        trials, successes = 120, 0
        for t in range(trials):
            sampler = LpSampler(n, 1.0, eps=0.3, rounds=6, seed=900 + t)
            stream.apply_to(sampler)
            result = sampler.sample()
            if not result.failed:
                hits[result.index] += 1
                successes += 1
        assert successes >= 40
        emp = hits / successes
        truth = lp_distribution(vec, 1.0)
        assert emp[3] == pytest.approx(truth[3], abs=0.17)

    def test_perfect_reference_tv(self):
        n = 100
        vec = uniform_signed_vector(n, seed=7)
        perfect = PerfectLpSampler(n, 1.5, seed=8)
        vector_to_stream(vec, seed=7).apply_to(perfect)
        counts = np.zeros(n)
        for _ in range(3000):
            counts[perfect.sample().index] += 1
        assert total_variation(counts / 3000,
                               lp_distribution(vec, 1.5)) < 0.1


class TestSketchShippingPipeline:
    """The one-way-communication pattern every Section 4 proof uses:
    Alice's sketch state + Bob's negative updates = sketch of x - y."""

    def test_l0_sampler_as_diff_engine(self):
        n = 400
        x = zipf_vector(n, scale=30, seed=9)
        y = x.copy()
        changed = [5, 77, 300]
        for c in changed:
            y[c] += 3
        sampler = L0Sampler(n, delta=0.2, seed=10)
        vector_to_stream(x, seed=9).apply_to(sampler)
        # "ship" -> continue with -y
        stream_y = vector_to_stream(y, seed=11).negated()
        stream_y.apply_to(sampler)
        result = sampler.sample()
        assert not result.failed
        assert result.index in changed
        assert result.estimate == x[result.index] - y[result.index]


class TestEndToEndItemPipeline:
    def test_chunked_processing_equals_single_shot(self):
        """Streaming items in arbitrary chunk sizes must not matter."""
        from repro.streams import duplicate_stream

        n = 96
        inst = duplicate_stream(n, seed=12)
        whole = DuplicateFinder(n, delta=0.3, seed=13, sampler_rounds=4)
        chunked = DuplicateFinder(n, delta=0.3, seed=13, sampler_rounds=4)
        whole.process_items(inst.items)
        items = inst.items
        for start in range(0, len(items), 7):
            chunked.process_items(items[start:start + 7])
        rw, rc = whole.result(), chunked.result()
        assert rw.failed == rc.failed
        if not rw.failed:
            assert rw.index == rc.index


class TestUpdateStreamAlgebra:
    def test_concat_negate_roundtrip_through_sketch(self):
        n = 128
        vec = uniform_signed_vector(n, seed=14)
        stream = vector_to_stream(vec, seed=14)
        ams = AMSSketch(n, groups=5, per_group=4, seed=15)
        stream.concat(stream.negated()).apply_to(ams)
        assert ams.l2() == pytest.approx(0.0, abs=1e-9)


class TestDocstrings:
    def test_package_docstring_example(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
