"""Unit tests for the rough turnstile L0 estimator (sketch/l0_estimator.py)."""

import numpy as np
import pytest

from repro.sketch.l0_estimator import L0Estimator, _pow_many
from repro.hashing.field import DEFAULT_FIELD
from repro.streams import sparse_vector, vector_to_stream

from conftest import apply_vector


class TestPowMany:
    def test_matches_python_pow(self):
        f = DEFAULT_FIELD
        base = np.uint64(123456)
        exps = np.array([0, 1, 2, 63, 1000, 999999], dtype=np.int64)
        out = _pow_many(f, base, exps)
        for e, v in zip(exps.tolist(), out.tolist()):
            assert int(v) == pow(int(base), e, int(f.p))

    def test_empty_input(self):
        out = _pow_many(DEFAULT_FIELD, np.uint64(3),
                        np.array([], dtype=np.int64))
        assert out.size == 0


class TestZeroDetection:
    def test_empty_sketch_is_zero(self):
        est = L0Estimator(256, seed=1)
        assert est.is_zero_vector()
        assert est.estimate() == 0.0

    def test_cancellation_detected_as_zero(self):
        est = L0Estimator(256, seed=2)
        est.update(7, 5)
        est.update(7, -5)
        assert est.is_zero_vector()

    def test_nonzero_detected(self):
        est = L0Estimator(256, seed=3)
        est.update(7, 1)
        assert not est.is_zero_vector()


class TestEstimate:
    @pytest.mark.parametrize("support", [1, 4, 16, 64, 200])
    def test_constant_factor(self, support):
        n = 1024
        vec = sparse_vector(n, support, seed=support)
        est = apply_vector(L0Estimator(n, reps=15, seed=support), vec,
                           seed=support)
        value = est.estimate()
        assert value >= support / 8.0
        assert value <= support * 8.0

    def test_insensitive_to_magnitudes(self):
        """L0 only counts the support; huge values must not matter."""
        n = 512
        a = L0Estimator(n, reps=15, seed=7)
        b = L0Estimator(n, reps=15, seed=7)
        positions = np.arange(0, 50, dtype=np.int64)
        a.update_many(positions, np.ones(50, dtype=np.int64))
        b.update_many(positions, np.full(50, 10**6, dtype=np.int64))
        assert a.estimate() == b.estimate()


class TestLinearity:
    def test_subtract_equal_vectors_is_zero(self):
        n = 512
        vec = sparse_vector(n, 30, seed=9)
        a = L0Estimator(n, seed=11)
        b = L0Estimator(n, seed=11)
        apply_vector(a, vec, seed=1)
        apply_vector(b, vec, seed=2)
        a.subtract(b)
        assert a.is_zero_vector()

    def test_difference_support(self):
        """Sketching x and subtracting y estimates |x - y|_0 — the
        two-round UR protocol's first message."""
        n = 512
        x = sparse_vector(n, 40, seed=13)
        y = x.copy()
        changed = np.flatnonzero(x)[:10]
        y[changed] += 1
        a = L0Estimator(n, seed=15)
        b = L0Estimator(n, seed=15)
        apply_vector(a, x, seed=1)
        apply_vector(b, y, seed=2)
        a.subtract(b)
        value = a.estimate()
        assert 10 / 8.0 <= value <= 10 * 8.0

    def test_merge_incompatible_rejected(self):
        a = L0Estimator(100, seed=1)
        b = L0Estimator(100, seed=2)
        with pytest.raises(ValueError):
            a.merge(b)


class TestSpace:
    def test_counter_grid(self):
        est = L0Estimator(1 << 10, reps=9)
        report = est.space_report()
        assert report.counter_count == 9 * est.levels
