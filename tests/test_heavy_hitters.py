"""Tests for the Section 4.4 heavy hitters (apps/heavy_hitters.py)."""

import numpy as np
import pytest

from repro.apps.heavy_hitters import (CountMedianHeavyHitters,
                                      CountSketchHeavyHitters,
                                      is_valid_heavy_hitter_set)
from repro.streams import heavy_hitter_instance, vector_to_stream


class TestValidity:
    def test_validator_accepts_exact_heavy_set(self):
        inst = heavy_hitter_instance(200, p=1.0, phi=0.2, seed=1)
        assert is_valid_heavy_hitter_set(inst.required(), inst.vector,
                                         1.0, 0.2)

    def test_validator_rejects_missing_required(self):
        inst = heavy_hitter_instance(200, p=1.0, phi=0.2, seed=2)
        assert not is_valid_heavy_hitter_set([], inst.vector, 1.0, 0.2)

    def test_validator_rejects_forbidden(self):
        inst = heavy_hitter_instance(200, p=1.0, phi=0.2, seed=3)
        bad = np.concatenate([inst.required(), inst.forbidden()[:1]])
        assert not is_valid_heavy_hitter_set(bad, inst.vector, 1.0, 0.2)


class TestCountSketchHH:
    def test_validation(self):
        with pytest.raises(ValueError):
            CountSketchHeavyHitters(100, p=2.5, phi=0.1)
        with pytest.raises(ValueError):
            CountSketchHeavyHitters(100, p=1.0, phi=0.0)

    def test_m_scales_as_phi_to_minus_p(self):
        a = CountSketchHeavyHitters(100, p=1.0, phi=0.25)
        b = CountSketchHeavyHitters(100, p=1.0, phi=0.25 / 4)
        assert b.m == pytest.approx(4 * a.m, rel=0.1)
        c = CountSketchHeavyHitters(100, p=2.0, phi=0.25)
        d = CountSketchHeavyHitters(100, p=2.0, phi=0.25 / 2)
        assert d.m == pytest.approx(4 * c.m, rel=0.1)

    @pytest.mark.parametrize("p,phi", [(0.5, 0.3), (1.0, 0.125),
                                       (1.5, 0.2), (2.0, 0.25)])
    def test_valid_sets_across_p(self, p, phi):
        """The Section 4.4 claim: count-sketch m=O(phi^-p) works for
        every p in (0, 2], in the general update model."""
        n, valid = 300, 0
        for seed in range(6):
            inst = heavy_hitter_instance(n, p=p, phi=phi, seed=seed)
            algo = CountSketchHeavyHitters(n, p, phi, seed=seed)
            vector_to_stream(inst.vector, seed=seed).apply_to(algo)
            if is_valid_heavy_hitter_set(algo.heavy_hitters(), inst.vector,
                                         p, phi):
                valid += 1
        assert valid >= 5

    def test_empty_vector_reports_empty(self):
        algo = CountSketchHeavyHitters(100, 1.0, 0.25, seed=1)
        assert algo.heavy_hitters().size == 0

    def test_handles_negative_heavy_coordinates(self):
        n = 200
        algo = CountSketchHeavyHitters(n, 1.0, 0.25, seed=2)
        vec = np.zeros(n, dtype=np.int64)
        vec[7] = -1000   # heavy but negative
        vec[50:60] = 3
        vector_to_stream(vec, seed=2).apply_to(algo)
        assert 7 in algo.heavy_hitters().tolist()

    def test_space_scales_with_phi(self):
        coarse = CountSketchHeavyHitters(1 << 10, 1.0, 0.25)
        fine = CountSketchHeavyHitters(1 << 10, 1.0, 0.25 / 8)
        assert fine.space_bits() > 4 * coarse.space_bits()


class TestCountMedianHH:
    def test_validation(self):
        with pytest.raises(ValueError):
            CountMedianHeavyHitters(100, phi=1.5)

    def test_strict_turnstile_valid_sets(self):
        n, valid = 300, 0
        for seed in range(6):
            inst = heavy_hitter_instance(n, p=1.0, phi=0.125, seed=seed)
            algo = CountMedianHeavyHitters(n, phi=0.125, seed=seed)
            vector_to_stream(inst.vector, seed=seed).apply_to(algo)
            if is_valid_heavy_hitter_set(algo.heavy_hitters(), inst.vector,
                                         1.0, 0.125):
                valid += 1
        assert valid >= 5

    def test_median_mode_runs(self):
        n = 200
        inst = heavy_hitter_instance(n, p=1.0, phi=0.2, seed=9)
        algo = CountMedianHeavyHitters(n, phi=0.2, seed=9, strict=False)
        vector_to_stream(inst.vector, seed=9).apply_to(algo)
        assert is_valid_heavy_hitter_set(algo.heavy_hitters(), inst.vector,
                                         1.0, 0.2)

    def test_empty(self):
        algo = CountMedianHeavyHitters(50, phi=0.2, seed=1)
        assert algo.heavy_hitters().size == 0


class TestLowerBoundShape:
    def test_space_matches_phi_power_law(self):
        """Theorem 9 says Omega(phi^-p log^2 n); the upper bound should
        track the same power law in phi."""
        n = 1 << 10
        bits = {}
        for phi in (0.5, 0.25, 0.125):
            bits[phi] = CountSketchHeavyHitters(n, 1.5, phi).space_bits()
        # halving phi should multiply space by ~2^1.5
        r1 = bits[0.25] / bits[0.5]
        r2 = bits[0.125] / bits[0.25]
        assert 1.8 < r1 < 4.5
        assert 1.8 < r2 < 4.5
