"""The network protocol layer: envelopes and the streaming decoder.

The load-bearing contract is :class:`FrameDecoder` ==
:func:`split_frames`: for *any* byte stream, chopped at *any*
boundaries, the decoder must emit exactly the frames the batch splitter
finds in the concatenation, hold exactly the bytes it calls an
incomplete tail, and raise :class:`WireError` on exactly the bytes it
calls corrupt.  The fuzz tests below drive both through the same
streams and assert the equivalence directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.net import (FrameDecoder, PROTOCOL_VERSION, ProtocolError,
                       decode_reply, decode_request, encode_error,
                       encode_event, encode_request, encode_response,
                       to_jsonable)
from repro.wire import (KIND_ERROR, KIND_EVENT, KIND_REQUEST,
                        KIND_RESPONSE, MAGIC, WIRE_VERSION, WireError,
                        encode_frame, peek_header, peek_kind,
                        split_frames)


def _frames(count: int = 4) -> list[bytes]:
    """A mixed bag of real envelopes, some with array sections."""
    rng = np.random.default_rng(99)
    out = [
        encode_request(1, "ping"),
        encode_request(2, "ingest", sections=(
            rng.integers(0, 100, size=37, dtype=np.int64),
            rng.integers(-5, 5, size=37, dtype=np.int64))),
        encode_response(2, "ingest", {"count": 37}, meta={"epoch": 37}),
        encode_error(3, "query", "KeyError", "no such epoch"),
        encode_event("draining", {"epoch": 37}),
        encode_response(4, "checkpoint", {"bytes": 64}, sections=(
            rng.integers(0, 256, size=64).astype(np.uint8),),
            compress="zlib"),
    ]
    return out[:count] if count < len(out) else out


# -- envelope round-trips -----------------------------------------------------


class TestEnvelopes:

    def test_request_round_trip(self):
        blob = encode_request(7, "query", {"op": "point", "index": 3})
        request = decode_request(blob)
        assert request.id == 7
        assert request.op == "query"
        assert request.args == {"op": "point", "index": 3}
        assert request.sections == []

    def test_request_sections_round_trip(self):
        indices = np.arange(10, dtype=np.int64)
        deltas = -np.ones(10, dtype=np.int64)
        request = decode_request(
            encode_request(1, "ingest", sections=(indices, deltas)))
        np.testing.assert_array_equal(request.sections[0], indices)
        np.testing.assert_array_equal(request.sections[1], deltas)

    def test_response_and_error_round_trip(self):
        ok = decode_reply(encode_response(5, "stats", {"queries": 2},
                                          meta={"epoch": 10}))
        assert ok.ok and ok.id == 5 and ok.op == "stats"
        assert ok.result == {"queries": 2}
        assert ok.meta == {"epoch": 10}
        bad = decode_reply(encode_error(6, "query", "ValueError", "no"))
        assert not bad.ok and bad.id == 6
        assert bad.error == "ValueError" and bad.message == "no"

    def test_event_header(self):
        kind, header = peek_header(encode_event("draining",
                                                {"epoch": 3}))
        assert kind == KIND_EVENT
        assert header == {"proto": PROTOCOL_VERSION,
                          "event": "draining", "meta": {"epoch": 3}}

    @pytest.mark.parametrize("blob", [
        encode_frame(KIND_REQUEST, {"proto": 99, "id": 1, "op": "x",
                                    "args": {}}),
        encode_frame(KIND_REQUEST, {"proto": PROTOCOL_VERSION, "id": 1,
                                    "args": {}}),                # no op
        encode_frame(KIND_REQUEST, {"proto": PROTOCOL_VERSION, "id": 1,
                                    "op": "x", "args": [1]}),    # args
        encode_frame(KIND_REQUEST, {"proto": PROTOCOL_VERSION,
                                    "id": True, "op": "x",
                                    "args": {}}),                # bool id
        encode_frame(KIND_REQUEST, {"proto": PROTOCOL_VERSION,
                                    "id": "1", "op": "x",
                                    "args": {}}),                # str id
    ], ids=["proto", "no-op", "args-list", "bool-id", "str-id"])
    def test_request_validation(self, blob):
        with pytest.raises(ProtocolError):
            decode_request(blob)

    def test_reply_rejects_foreign_kind(self):
        with pytest.raises(ProtocolError):
            decode_reply(encode_request(1, "ping"))

    def test_protocol_error_is_wire_error(self):
        # One except-clause catches both framing and envelope problems.
        assert issubclass(ProtocolError, WireError)

    def test_kinds_are_distinct(self):
        kinds = {peek_kind(encode_request(1, "ping")),
                 peek_kind(encode_response(1, "ping", "pong")),
                 peek_kind(encode_error(1, "ping", "E", "m")),
                 peek_kind(encode_event("draining"))}
        assert kinds == {KIND_REQUEST, KIND_RESPONSE, KIND_ERROR,
                         KIND_EVENT}


class TestToJsonable:

    def test_numpy_and_containers(self):
        value = {"a": np.int64(3), "b": np.arange(3),
                 "c": (np.float64(0.5), [np.uint8(1)])}
        assert to_jsonable(value) == {"a": 3, "b": [0, 1, 2],
                                      "c": [0.5, [1]]}

    def test_dataclass(self):
        from repro.core import SampleResult
        out = to_jsonable(SampleResult(failed=False, index=3,
                                       estimate=-2.0))
        assert out["index"] == 3 and out["estimate"] == -2.0
        assert all(isinstance(k, str) for k in out)

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_passthrough_scalars(self):
        for value in (None, True, 3, 0.5, "x"):
            assert to_jsonable(value) == value


# -- the streaming decoder ----------------------------------------------------


def _feed_chunks(decoder: FrameDecoder, stream: bytes, sizes):
    """Feed ``stream`` in chunks of the given sizes (cycled)."""
    got, offset, i = [], 0, 0
    while offset < len(stream):
        size = sizes[i % len(sizes)]
        got.extend(decoder.feed(stream[offset:offset + size]))
        offset += size
        i += 1
    return got


class TestFrameDecoder:

    def test_whole_stream_at_once(self):
        frames = _frames(6)
        decoder = FrameDecoder()
        assert decoder.feed(b"".join(frames)) == frames
        assert decoder.pending == 0

    @pytest.mark.parametrize("size", [1, 2, 3, 7, 64])
    def test_fixed_chunk_sizes_match_split_frames(self, size):
        stream = b"".join(_frames(6))
        expected, consumed = split_frames(stream)
        assert consumed == len(stream)
        assert _feed_chunks(FrameDecoder(), stream, [size]) == expected

    def test_every_single_split_point(self):
        # Two frames, cut at every possible boundary: header bytes,
        # section bytes, uvarint bytes — all of them.
        stream = b"".join(_frames(2))
        expected, _ = split_frames(stream)
        for cut in range(len(stream) + 1):
            decoder = FrameDecoder()
            got = decoder.feed(stream[:cut])
            got.extend(decoder.feed(stream[cut:]))
            assert got == expected, f"diverged at cut {cut}"
            assert decoder.pending == 0

    def test_random_chunking_fuzz(self):
        stream = b"".join(_frames(6)) * 3
        expected, _ = split_frames(stream)
        rng = np.random.default_rng(4242)
        for _ in range(25):
            sizes = rng.integers(1, 50, size=64).tolist()
            assert _feed_chunks(FrameDecoder(), stream, sizes) \
                == expected

    def test_incomplete_tail_is_held(self):
        frame = _frames(1)[0]
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.pending == len(frame) - 1
        assert decoder.feed(frame[-1:]) == [frame]
        assert decoder.pending == 0

    def test_garbage_raises_like_split_frames(self):
        stream = b"not a frame at all"
        with pytest.raises(WireError):
            split_frames(stream)
        with pytest.raises(WireError):
            FrameDecoder().feed(stream)

    def test_trailing_garbage_after_frames(self):
        frame = _frames(1)[0]
        stream = frame + b"XXXXXXXX"
        with pytest.raises(WireError):
            split_frames(stream)
        # Streamed: the completed frame is returned by the feed that
        # also buffers the poison; the error surfaces on the next feed.
        decoder = FrameDecoder()
        assert decoder.feed(stream) == [frame]
        with pytest.raises(WireError):
            decoder.feed(b"")

    def test_poisoned_decoder_stays_poisoned(self):
        decoder = FrameDecoder()
        with pytest.raises(WireError):
            decoder.feed(b"garbage everywhere")
        for _ in range(3):
            with pytest.raises(WireError):
                decoder.feed(b"")

    def test_foreign_version_is_corruption_not_tail(self):
        frame = bytearray(_frames(1)[0])
        frame[len(MAGIC)] = WIRE_VERSION + 1
        with pytest.raises(WireError):
            split_frames(bytes(frame))
        decoder = FrameDecoder()
        with pytest.raises(WireError):
            # One byte at a time: must raise as soon as the version
            # byte lands, exactly where split_frames gives up.
            for offset in range(len(frame)):
                decoder.feed(bytes(frame[offset:offset + 1]))

    def test_unknown_kind_is_held_not_corruption(self):
        # split_frames treats a complete prelude with an unknown kind
        # byte as an incomplete tail (the version byte checks out), so
        # the streaming twin must hold it too — not raise.
        frame = bytearray(_frames(1)[0])
        frame[len(MAGIC) + 1] = 0xEE
        got, consumed = split_frames(bytes(frame))
        assert got == [] and consumed == 0
        decoder = FrameDecoder()
        assert decoder.feed(bytes(frame)) == []
        assert decoder.pending == len(frame)

    def test_wrong_magic_mid_stream(self):
        frames = _frames(2)
        stream = frames[0] + b"JUNK" + frames[1]
        with pytest.raises(WireError):
            split_frames(stream)
        decoder = FrameDecoder()
        collected = []
        with pytest.raises(WireError):
            for offset in range(0, len(stream), 5):
                collected.extend(decoder.feed(stream[offset:offset + 5]))
        assert collected == [frames[0]]

    def test_empty_feeds_are_harmless(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"") == []
        frame = _frames(1)[0]
        assert decoder.feed(frame[:3]) == []
        assert decoder.feed(b"") == []
        assert decoder.feed(frame[3:]) == [frame]
