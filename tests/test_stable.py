"""Unit tests for the p-stable norm estimator (sketch/stable.py) — Lemma 2."""

import numpy as np
import pytest

from repro.sketch.stable import StableSketch, stable_median
from repro.streams import uniform_signed_vector, zipf_vector

from conftest import apply_vector


class TestStableMedian:
    def test_cauchy_is_one(self):
        assert stable_median(1.0) == 1.0

    def test_gaussian_case(self):
        # median |sqrt(2) N(0,1)| = sqrt(2) * 0.6745 ~ 0.9539
        assert stable_median(2.0) == pytest.approx(0.9539, rel=0.02)

    def test_cached(self):
        a = stable_median(1.5)
        b = stable_median(1.5)
        assert a == b


class TestEstimation:
    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            StableSketch(10, 0.0, rows=5)
        with pytest.raises(ValueError):
            StableSketch(10, 2.1, rows=5)
        with pytest.raises(ValueError):
            StableSketch(10, 1.0, rows=0)

    @pytest.mark.parametrize("p", [0.5, 1.0, 1.5, 2.0])
    def test_constant_factor(self, p):
        n = 600
        good = 0
        for seed in range(8):
            vec = zipf_vector(n, scale=1000, seed=seed)
            sk = apply_vector(StableSketch(n, p, rows=35, seed=seed),
                              vec, seed=seed)
            truth = float((np.abs(vec).astype(float)**p).sum()**(1.0 / p))
            if 0.5 * truth <= sk.norm_estimate() <= 2.0 * truth:
                good += 1
        assert good >= 6

    def test_norm_upper_brackets(self):
        """Lemma 2's contract: ||x||_p <= r <= 2||x||_p most of the time."""
        n, p = 500, 1.0
        hits = 0
        for seed in range(10):
            vec = zipf_vector(n, scale=800, seed=seed)
            sk = apply_vector(StableSketch(n, p, rows=35, seed=seed),
                              vec, seed=seed)
            truth = float(np.abs(vec).sum())
            if truth <= sk.norm_upper() <= 2.0 * truth:
                hits += 1
        assert hits >= 6

    def test_signed_inputs(self):
        n = 400
        vec = uniform_signed_vector(n, seed=3)
        sk = apply_vector(StableSketch(n, 1.0, rows=35, seed=3), vec, seed=3)
        truth = float(np.abs(vec).sum())
        assert sk.norm_estimate() == pytest.approx(truth, rel=0.5)

    def test_zero_vector(self):
        sk = StableSketch(100, 1.0, rows=15, seed=1)
        assert sk.norm_estimate() == 0.0

    def test_deletions_cancel_exactly(self):
        """Insert then delete the same mass: counters return to zero."""
        sk = StableSketch(100, 1.3, rows=15, seed=2)
        sk.update(5, 100)
        sk.update(5, -100)
        assert np.allclose(sk.counters, 0.0)


class TestLinearity:
    def test_merge(self):
        a = StableSketch(100, 1.0, rows=15, seed=4)
        b = StableSketch(100, 1.0, rows=15, seed=4)
        a.update(1, 3)
        b.update(2, 4)
        joint = StableSketch(100, 1.0, rows=15, seed=4)
        joint.update(1, 3)
        joint.update(2, 4)
        a.merge(b)
        assert np.allclose(a.counters, joint.counters)

    def test_incompatible_p_rejected(self):
        a = StableSketch(100, 1.0, rows=15, seed=4)
        b = StableSketch(100, 1.5, rows=15, seed=4)
        with pytest.raises(ValueError):
            a.merge(b)


class TestSpace:
    def test_rows_counters_plus_seed(self):
        sk = StableSketch(1000, 1.0, rows=21)
        report = sk.space_report()
        assert report.counter_count == 21
        assert report.seed_bits == 64
