"""Shared case registry for the engine test suites.

One entry per engine-registered structure, with a factory small enough
that property tests can afford dozens of instantiations.  ``exact``
mirrors the registry's claim that sharded-merge state is byte-identical
to the single-stream state (integer/modular counters); float-state
structures are compared with a tight ``allclose`` instead.

``item_stream`` marks the wrappers that consume item streams via
``process_items`` (and are therefore checkpointable but not shardable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.apps.duplicates import DuplicateFinder, ShortStreamDuplicateFinder
from repro.apps.heavy_hitters import (CountMedianHeavyHitters,
                                      CountSketchHeavyHitters)
from repro.apps.moments import FrequencyMomentEstimator
from repro.core import L0Sampler, L1Sampler, LpSampler, LpSamplerRound
from repro.recovery import (IBLTSparseRecovery, OneSparseDetector,
                            SyndromeSparseRecovery)
from repro.sketch import (AMSSketch, CountMin, CountSketch, L0Estimator,
                          StableSketch)


@dataclass(frozen=True)
class EngineCase:
    """A structure under test: how to build it and what to expect."""

    name: str
    factory: Callable[[int, int], Any]   # (universe, seed) -> structure
    exact: bool = True                   # sharded merge is byte-identical
    shardable: bool = True
    item_stream: bool = False            # feeds via process_items


CASES = [
    EngineCase("CountSketch",
               lambda n, s: CountSketch(n, m=6, rows=5, seed=s)),
    EngineCase("CountMin",
               lambda n, s: CountMin(n, buckets=16, rows=5, seed=s)),
    EngineCase("AMSSketch",
               lambda n, s: AMSSketch(n, groups=5, per_group=4, seed=s)),
    EngineCase("StableSketch",
               lambda n, s: StableSketch(n, 1.0, rows=9, seed=s),
               exact=False),
    EngineCase("L0Estimator",
               lambda n, s: L0Estimator(n, reps=4, seed=s)),
    EngineCase("SyndromeSparseRecovery",
               lambda n, s: SyndromeSparseRecovery(n, sparsity=4, seed=s)),
    EngineCase("IBLTSparseRecovery",
               lambda n, s: IBLTSparseRecovery(n, sparsity=4, seed=s)),
    EngineCase("OneSparseDetector",
               lambda n, s: OneSparseDetector(n, seed=s)),
    EngineCase("L0Sampler",
               lambda n, s: L0Sampler(n, delta=0.2, seed=s)),
    EngineCase("LpSamplerRound",
               lambda n, s: LpSamplerRound(n, 1.3, 0.3, seed=s),
               exact=False),
    EngineCase("LpSampler",
               lambda n, s: LpSampler(n, 1.0, 0.3, delta=0.3, seed=s,
                                      rounds=2),
               exact=False),
    EngineCase("L1Sampler",
               lambda n, s: L1Sampler(n, eps=0.4, seed=s, rounds=2),
               exact=False),
    EngineCase("CountSketchHeavyHitters",
               lambda n, s: CountSketchHeavyHitters(n, p=1.0, phi=0.2,
                                                    seed=s),
               exact=False),
    EngineCase("CountMedianHeavyHitters",
               lambda n, s: CountMedianHeavyHitters(n, phi=0.2, seed=s)),
    EngineCase("FrequencyMomentEstimator",
               lambda n, s: FrequencyMomentEstimator(n, q=2.0, samples=2,
                                                     eps=0.4, seed=s),
               exact=False),
    EngineCase("DuplicateFinder",
               lambda n, s: DuplicateFinder(n, delta=0.25, seed=s,
                                            sampler_rounds=2),
               exact=False, shardable=False, item_stream=True),
    EngineCase("ShortStreamDuplicateFinder",
               lambda n, s: ShortStreamDuplicateFinder(n, s=2, delta=0.25,
                                                       seed=s,
                                                       sampler_rounds=2),
               exact=False, shardable=False, item_stream=True),
]

SHARDABLE = [case for case in CASES if case.shardable]

CASE_IDS = [case.name for case in CASES]
SHARDABLE_IDS = [case.name for case in SHARDABLE]

#: (K_from, K_to, partition) crossings for the reshard equivalence
#: suites: every shard count in {1, 2, 4, 8} appears both as a source
#: and as a destination, growth and shrink are both covered, and the
#: two partition schemes alternate.
RESHARD_CROSSINGS = [
    (1, 4, "hash"),
    (2, 8, "round_robin"),
    (4, 8, "hash"),
    (8, 2, "round_robin"),
    (4, 1, "hash"),
    (2, 2, "round_robin"),
]
RESHARD_IDS = [f"K{a}toK{b}-{p}" for a, b, p in RESHARD_CROSSINGS]


def random_turnstile(universe: int, length: int, seed: int):
    """A seeded general turnstile workload (insertions and deletions)."""
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0xCA5E)))
    indices = rng.integers(0, universe, size=length, dtype=np.int64)
    deltas = rng.integers(-6, 12, size=length, dtype=np.int64)
    deltas[deltas == 0] = 1
    return indices, deltas


def random_items(universe: int, length: int, seed: int) -> np.ndarray:
    """A seeded item stream over the alphabet [0, universe)."""
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0x17E)))
    return rng.integers(0, universe, size=length, dtype=np.int64)


def feed(case: EngineCase, obj, universe: int, length: int,
         seed: int, parts: int = 1) -> None:
    """Feed a seeded workload in ``parts`` equal batched calls."""
    if case.item_stream:
        payload = random_items(universe, length, seed)
        splits = np.array_split(payload, parts)
        for part in splits:
            obj.process_items(part)
    else:
        indices, deltas = random_turnstile(universe, length, seed)
        for lo in range(parts):
            sl = slice(lo * length // parts, (lo + 1) * length // parts)
            obj.update_many(indices[sl], deltas[sl])


def states_equal(a, b, exact: bool) -> bool:
    """Byte-identical for exact cases, tight allclose otherwise."""
    from repro.engine import state_arrays

    mine, theirs = state_arrays(a), state_arrays(b)
    if len(mine) != len(theirs):
        return False
    if exact:
        return all(np.array_equal(x, y) for x, y in zip(mine, theirs))
    return all(np.allclose(x, y, rtol=1e-9, atol=1e-9)
               for x, y in zip(mine, theirs))
