"""Distributional guarantees of the samplers, via the shared harness.

Every check here goes through :mod:`_stattools` — seeded chi-square /
TV-distance tests with explicit alphas — instead of per-test magic
tolerances.  The heavyweight sweeps are marked ``slow`` and excluded
from the CI fast lane.
"""

import numpy as np
import pytest

from repro.core import L0Sampler, LpSamplerRound, lp_distribution
from repro.engine import ShardedPipeline
from repro.streams import sparse_vector, vector_to_stream

from _stattools import (assert_matches_distribution, assert_uniform_over,
                        collect_indices, empirical_tv)


class TestL0Uniformity:
    def test_uniform_over_small_support(self):
        """|J| <= s: recovery is exact, so the sample must be exactly
        uniform over the support — chi-square against the uniform law."""
        n = 128
        vec = np.zeros(n, dtype=np.int64)
        support = np.array([3, 17, 44, 90, 101, 119])
        vec[support] = np.array([1, -2, 3, 10, -1, 7])
        indices = collect_indices(
            lambda s: L0Sampler(n, delta=0.2, seed=s),
            vec, trials=360, seed_base=500)
        assert_uniform_over(indices, support, min_samples=300)

    def test_magnitudes_do_not_bias_l0(self):
        """Huge coordinate values must not shift the support law."""
        n = 256
        vec = sparse_vector(n, 10, seed=7)
        support = np.flatnonzero(vec)
        vec[support[:3]] = 10**6
        indices = collect_indices(
            lambda s: L0Sampler(n, delta=0.2, seed=s),
            vec, trials=360, seed_base=700)
        assert_uniform_over(indices, support, min_samples=250)

    @pytest.mark.slow
    def test_uniform_over_large_support(self):
        """|J| > s: the level hierarchy takes over; still uniform."""
        n = 512
        vec = sparse_vector(n, 80, seed=3)
        support = np.flatnonzero(vec)
        indices = collect_indices(
            lambda s: L0Sampler(n, delta=0.2, seed=s),
            vec, trials=600, seed_base=900)
        # chi-square over 80 cells needs pooling; harness handles it.
        assert_matches_distribution(
            indices, (vec != 0) / support.size, min_samples=400)


class TestLpDistribution:
    @pytest.mark.slow
    @pytest.mark.parametrize("p", [0.7, 1.0, 1.4])
    def test_head_tv_within_bound(self, p):
        """Conditioned on success, round outputs track the Lp law:
        head-coarsened TV below the eps-scale bound."""
        n = 200
        vec = np.zeros(n, dtype=np.int64)
        vec[11] = 70
        vec[40:120] = 3
        indices = collect_indices(
            lambda s: LpSamplerRound(n, p, 0.3, seed=s),
            vec, trials=500, seed_base=1300)
        assert len(indices) >= 25     # Theta(eps) per-round success
        truth = lp_distribution(vec, p)
        assert empirical_tv(indices, truth, head=10) <= 0.22

    def test_dominant_coordinate_frequency(self):
        """The heavy coordinate appears at ~ its L1 weight (chi-square
        on the coarsened {heavy, rest} law)."""
        n = 150
        vec = np.zeros(n, dtype=np.int64)
        vec[5] = 50
        vec[30:80] = 2
        indices = collect_indices(
            lambda s: LpSamplerRound(n, 1.0, 0.3, seed=s),
            vec, trials=260, seed_base=1500)
        assert len(indices) >= 20
        truth = lp_distribution(vec, 1.0)
        heavy_freq = sum(i == 5 for i in indices) / len(indices)
        sigma = np.sqrt(truth[5] * (1 - truth[5]) / len(indices))
        assert abs(heavy_freq - truth[5]) <= 4.5 * sigma + 0.3 * truth[5]


class TestShardedSamplingLaw:
    def test_sharded_l0_keeps_the_uniform_law(self):
        """Distribution-level closure: sharded ingestion + merge must
        not bias the sampling law (state equality already guarantees
        it; this pins the end-to-end statistical behaviour)."""
        n = 128
        vec = np.zeros(n, dtype=np.int64)
        support = np.array([9, 33, 57, 76, 104])
        vec[support] = np.array([4, -1, 2, 8, -5])
        stream = vector_to_stream(vec, seed=12)
        indices = []
        for t in range(300):
            pipeline = ShardedPipeline(
                lambda: L0Sampler(n, delta=0.2, seed=2000 + t),
                shards=3, chunk_size=7)
            pipeline.ingest_stream(stream)
            result = pipeline.merged().sample()
            if not result.failed:
                indices.append(int(result.index))
        assert_uniform_over(indices, support, min_samples=250)
