"""Unit tests for sparse recovery: Berlekamp–Massey, syndrome decoder
(Lemma 5), IBLT alternative and the 1-sparse detector."""

import numpy as np
import pytest

from repro.recovery.berlekamp_massey import berlekamp_massey, lfsr_length
from repro.recovery.iblt import IBLTSparseRecovery
from repro.recovery.one_sparse import OneSparseDetector
from repro.recovery.syndrome import SyndromeSparseRecovery
from repro.streams import sparse_vector, vector_to_stream, zipf_vector

from conftest import apply_vector

PRIME = 2**31 - 1


class TestBerlekampMassey:
    def test_zero_sequence(self):
        assert berlekamp_massey([0, 0, 0, 0], PRIME) == [1]

    def test_geometric_sequence_is_lfsr_length_one(self):
        seq = [pow(3, j, PRIME) for j in range(8)]
        conn = berlekamp_massey(seq, PRIME)
        assert len(conn) == 2
        # s_j - 3 s_{j-1} = 0  =>  C = 1 - 3 X
        assert conn[1] == PRIME - 3

    def test_fibonacci_mod_p(self):
        seq = [1, 1]
        for _ in range(10):
            seq.append((seq[-1] + seq[-2]) % PRIME)
        conn = berlekamp_massey(seq, PRIME)
        assert lfsr_length(seq, PRIME) == 2
        assert conn == [1, PRIME - 1, PRIME - 1]

    def test_recurrence_holds(self):
        rng = np.random.default_rng(5)
        # random weighted power sums with 4 terms
        locators = [2, 7, 11, 19]
        weights = [int(rng.integers(1, 1000)) for _ in locators]
        seq = [sum(w * pow(a, j, PRIME) for w, a in zip(weights, locators))
               % PRIME for j in range(10)]
        conn = berlekamp_massey(seq, PRIME)
        L = len(conn) - 1
        assert L == 4
        for j in range(L, len(seq)):
            acc = sum(conn[k] * seq[j - k] for k in range(L + 1)) % PRIME
            assert acc == 0

    def test_small_field(self):
        seq = [pow(2, j, 13) for j in range(6)]
        conn = berlekamp_massey(seq, 13)
        assert conn == [1, 11]  # 1 - 2X mod 13


class TestSyndromeRecovery:
    def test_zero_vector(self):
        rec = SyndromeSparseRecovery(100, sparsity=3, seed=1)
        result = rec.recover()
        assert not result.dense and result.is_zero

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ValueError):
            SyndromeSparseRecovery(100, sparsity=0)

    @pytest.mark.parametrize("support,seed", [(1, 1), (3, 2), (8, 3),
                                              (12, 4)])
    def test_exact_roundtrip(self, support, seed):
        n = 700
        vec = sparse_vector(n, support, seed=seed)
        rec = SyndromeSparseRecovery(n, sparsity=12, seed=seed)
        apply_vector(rec, vec, seed=seed)
        result = rec.recover()
        assert not result.dense
        assert np.array_equal(result.to_dense(n), vec)

    def test_roundtrip_at_exact_sparsity_limit(self):
        n = 300
        vec = sparse_vector(n, 5, seed=9)
        rec = SyndromeSparseRecovery(n, sparsity=5, seed=9)
        apply_vector(rec, vec, seed=9)
        result = rec.recover()
        assert not result.dense
        assert np.array_equal(result.to_dense(n), vec)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_dense_flagged(self, seed):
        n = 400
        vec = sparse_vector(n, 60, seed=seed)  # far above sparsity
        rec = SyndromeSparseRecovery(n, sparsity=5, seed=seed)
        apply_vector(rec, vec, seed=seed)
        assert rec.recover().dense

    def test_deletions_reach_sparse_state(self):
        """Mid-stream the vector is dense; deletions make it 2-sparse."""
        n = 200
        rec = SyndromeSparseRecovery(n, sparsity=3, seed=7)
        idx = np.arange(50, dtype=np.int64)
        rec.update_many(idx, np.ones(50, dtype=np.int64))
        rec.update_many(idx[2:], -np.ones(48, dtype=np.int64))
        result = rec.recover()
        assert not result.dense
        assert result.indices.tolist() == [0, 1]
        assert result.values.tolist() == [1, 1]

    def test_negative_values_recovered(self):
        n = 100
        rec = SyndromeSparseRecovery(n, sparsity=4, seed=8)
        rec.update(10, -7)
        rec.update(90, 3)
        result = rec.recover()
        assert not result.dense
        assert result.to_dense(n)[10] == -7
        assert result.to_dense(n)[90] == 3

    def test_linearity_subtract(self):
        """recover(sketch(x) - sketch(y)) = x - y when the diff is sparse."""
        n = 300
        x = zipf_vector(n, scale=50, seed=3)
        y = x.copy()
        y[5] += 9
        y[200] -= 4
        a = SyndromeSparseRecovery(n, sparsity=4, seed=5)
        b = SyndromeSparseRecovery(n, sparsity=4, seed=5)
        apply_vector(a, x, seed=1)
        apply_vector(b, y, seed=2)
        a.subtract(b)
        result = a.recover()
        assert not result.dense
        diff = result.to_dense(n)
        assert diff[5] == -9 and diff[200] == 4
        assert np.count_nonzero(diff) == 2

    def test_space_linear_in_sparsity(self):
        small = SyndromeSparseRecovery(1000, sparsity=2)
        large = SyndromeSparseRecovery(1000, sparsity=20)
        ratio = large.space_report().counter_total \
            / small.space_report().counter_total
        assert 5.0 < ratio < 12.0  # 40+3 vs 4+3 counters


class TestIBLT:
    @pytest.mark.parametrize("seed", range(8))
    def test_roundtrip_mostly_succeeds(self, seed):
        n = 500
        vec = sparse_vector(n, 10, seed=seed)
        rec = IBLTSparseRecovery(n, sparsity=16, seed=seed + 100)
        apply_vector(rec, vec, seed=seed)
        result = rec.recover()
        if not result.dense:  # failure is allowed but must be flagged
            assert np.array_equal(result.to_dense(n), vec)

    def test_aggregate_success_rate(self):
        n, ok = 500, 0
        for seed in range(20):
            vec = sparse_vector(n, 10, seed=seed)
            rec = IBLTSparseRecovery(n, sparsity=16, seed=seed + 300)
            apply_vector(rec, vec, seed=seed)
            result = rec.recover()
            if not result.dense and np.array_equal(result.to_dense(n), vec):
                ok += 1
        assert ok >= 16

    def test_dense_flagged(self):
        n = 400
        vec = sparse_vector(n, 80, seed=5)
        rec = IBLTSparseRecovery(n, sparsity=5, seed=5)
        apply_vector(rec, vec, seed=5)
        assert rec.recover().dense

    def test_zero_vector(self):
        rec = IBLTSparseRecovery(100, sparsity=4, seed=1)
        result = rec.recover()
        assert not result.dense and result.is_zero

    def test_recover_does_not_mutate(self):
        rec = IBLTSparseRecovery(100, sparsity=4, seed=2)
        rec.update(3, 7)
        before = rec.value_sum.copy()
        rec.recover()
        assert np.array_equal(rec.value_sum, before)

    def test_subtract_linearity(self):
        n = 200
        a = IBLTSparseRecovery(n, sparsity=8, seed=3)
        b = IBLTSparseRecovery(n, sparsity=8, seed=3)
        a.update(10, 5)
        a.update(20, 7)
        b.update(20, 7)
        a.subtract(b)
        result = a.recover()
        assert not result.dense
        assert result.indices.tolist() == [10]


class TestOneSparse:
    def test_zero(self):
        det = OneSparseDetector(100, seed=1)
        assert det.decide().kind == "zero"

    def test_one_sparse_positive(self):
        det = OneSparseDetector(100, seed=2)
        det.update(33, 12)
        verdict = det.decide()
        assert verdict.kind == "one-sparse"
        assert verdict.index == 33 and verdict.value == 12

    def test_one_sparse_negative(self):
        det = OneSparseDetector(100, seed=3)
        det.update(77, -4)
        verdict = det.decide()
        assert verdict.kind == "one-sparse"
        assert verdict.index == 77 and verdict.value == -4

    def test_two_coordinates_rejected(self):
        det = OneSparseDetector(100, seed=4)
        det.update(1, 5)
        det.update(2, 5)
        assert det.decide().kind == "not-one-sparse"

    def test_cancelling_sum_rejected(self):
        """A = 0 but the vector is non-zero: must not claim 1-sparse."""
        det = OneSparseDetector(100, seed=5)
        det.update(1, 5)
        det.update(2, -5)
        assert det.decide().kind == "not-one-sparse"

    def test_many_random_pairs_never_false_positive(self):
        rng = np.random.default_rng(6)
        for trial in range(50):
            det = OneSparseDetector(1000, seed=trial)
            i, j = rng.choice(1000, size=2, replace=False)
            det.update(int(i), int(rng.integers(1, 100)))
            det.update(int(j), int(rng.integers(1, 100)))
            assert det.decide().kind == "not-one-sparse"

    def test_deletion_down_to_one(self):
        det = OneSparseDetector(100, seed=7)
        det.update(1, 5)
        det.update(2, 3)
        det.update(2, -3)
        verdict = det.decide()
        assert verdict.kind == "one-sparse"
        assert verdict.index == 1

    def test_subtract(self):
        a = OneSparseDetector(100, seed=8)
        b = OneSparseDetector(100, seed=8)
        a.update(1, 5)
        a.update(9, 2)
        b.update(9, 2)
        a.subtract(b)
        verdict = a.decide()
        assert verdict.kind == "one-sparse" and verdict.index == 1
