"""Tests for the turnstile model and the workload generators."""

import numpy as np
import pytest

from repro.streams import (UpdateStream, duplicate_stream,
                           heavy_hitter_instance, items_to_updates,
                           long_stream, planted_duplicate_stream, pm1_vector,
                           short_stream, signed_zipf_vector, sparse_vector,
                           uniform_signed_vector, vector_to_stream,
                           zipf_vector)
from repro.streams.model import Update


class TestUpdateStream:
    def test_from_pairs_roundtrip(self):
        stream = UpdateStream.from_pairs(10, [(1, 5), (2, -3), (1, 1)])
        vec = stream.final_vector()
        assert vec[1] == 6 and vec[2] == -3

    def test_empty_stream(self):
        stream = UpdateStream.from_pairs(10, [])
        assert len(stream) == 0
        assert not stream.final_vector().any()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            UpdateStream.from_pairs(10, [(10, 1)])
        with pytest.raises(ValueError):
            UpdateStream.from_pairs(10, [(-1, 1)])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            UpdateStream(10, np.array([1, 2]), np.array([1]))

    def test_iteration_yields_updates(self):
        stream = UpdateStream.from_pairs(10, [(3, 7)])
        items = list(stream)
        assert items == [Update(3, 7)]

    def test_from_vector(self):
        vec = np.array([0, 5, 0, -2])
        stream = UpdateStream.from_vector(vec)
        assert len(stream) == 2
        assert np.array_equal(stream.final_vector(), vec)

    def test_strict_turnstile_detection(self):
        ok = UpdateStream.from_pairs(5, [(0, 5), (0, -3)])
        assert ok.is_strict_turnstile()
        bad = UpdateStream.from_pairs(5, [(0, -1)])
        assert not bad.is_strict_turnstile()

    def test_concat_and_negate(self):
        a = UpdateStream.from_pairs(5, [(0, 1)])
        b = UpdateStream.from_pairs(5, [(1, 2)])
        c = a.concat(b.negated())
        vec = c.final_vector()
        assert vec[0] == 1 and vec[1] == -2

    def test_concat_universe_mismatch(self):
        a = UpdateStream.from_pairs(5, [(0, 1)])
        b = UpdateStream.from_pairs(6, [(0, 1)])
        with pytest.raises(ValueError):
            a.concat(b)

    def test_apply_to_prefers_bulk(self):
        class Bulk:
            def __init__(self):
                self.bulk_calls = 0

            def update_many(self, idx, dlt):
                self.bulk_calls += 1

        sink = Bulk()
        UpdateStream.from_pairs(5, [(0, 1), (1, 2)]).apply_to(sink)
        assert sink.bulk_calls == 1

    def test_max_coordinate_magnitude(self):
        stream = UpdateStream.from_pairs(5, [(0, 100), (1, -7)])
        assert stream.max_coordinate_magnitude() == 100


class TestItemsEncoding:
    def test_theorem3_identity(self):
        """x_i = occurrences - 1 after the baseline."""
        items = np.array([0, 0, 2])
        stream = items_to_updates(items, 4)
        vec = stream.final_vector()
        assert vec.tolist() == [1, -1, 0, -1]

    def test_without_baseline(self):
        stream = items_to_updates(np.array([1, 1]), 3,
                                  include_baseline=False)
        assert stream.final_vector().tolist() == [0, 2, 0]

    def test_rejects_out_of_alphabet(self):
        with pytest.raises(ValueError):
            items_to_updates(np.array([5]), 3)


class TestVectorToStream:
    @pytest.mark.parametrize("seed", range(5))
    def test_stream_realises_vector(self, seed):
        vec = uniform_signed_vector(64, seed=seed)
        stream = vector_to_stream(vec, seed=seed)
        assert np.array_equal(stream.final_vector(), vec)

    def test_contains_deletions(self):
        vec = zipf_vector(128, scale=500, seed=1)
        stream = vector_to_stream(vec, seed=1)
        assert (stream.deltas < 0).any()  # the general update model


class TestGenerators:
    def test_zipf_nonnegative(self):
        assert zipf_vector(100, seed=1).min() >= 0

    def test_signed_zipf_has_both_signs(self):
        vec = signed_zipf_vector(200, seed=2)
        assert (vec > 0).any() and (vec < 0).any()

    def test_pm1_values(self):
        vec = pm1_vector(500, seed=3)
        assert set(np.unique(vec).tolist()) <= {-1, 0, 1}

    def test_sparse_vector_support(self):
        vec = sparse_vector(100, 17, seed=4)
        assert np.count_nonzero(vec) == 17

    def test_sparse_vector_rejects_oversupport(self):
        with pytest.raises(ValueError):
            sparse_vector(10, 11)


class TestDuplicateWorkloads:
    def test_duplicate_stream_has_duplicates(self):
        inst = duplicate_stream(100, seed=1)
        assert len(inst.items) == 101
        assert inst.duplicates.size >= 1
        values, counts = np.unique(inst.items, return_counts=True)
        assert set(values[counts >= 2]) == set(inst.duplicates)

    def test_planted_single_duplicate(self):
        inst = planted_duplicate_stream(100, seed=2)
        assert len(inst.items) == 101
        values, counts = np.unique(inst.items, return_counts=True)
        dups = values[counts >= 2]
        assert dups.tolist() == inst.duplicates.tolist()
        assert len(dups) == 1

    def test_planted_copies(self):
        inst = planted_duplicate_stream(50, copies=5, seed=3)
        values, counts = np.unique(inst.items, return_counts=True)
        planted = inst.duplicates[0]
        assert counts[values == planted][0] == 5

    def test_short_stream_no_duplicate(self):
        inst = short_stream(100, missing=10, with_duplicate=False, seed=4)
        assert len(inst.items) == 90
        assert inst.duplicates.size == 0
        assert np.unique(inst.items).size == 90

    def test_short_stream_with_duplicate(self):
        inst = short_stream(100, missing=10, with_duplicate=True, seed=5)
        assert len(inst.items) == 90
        assert inst.duplicates.size == 1

    def test_long_stream_length(self):
        inst = long_stream(100, extra=20, seed=6)
        assert len(inst.items) == 120

    def test_update_stream_encoding(self):
        inst = duplicate_stream(50, seed=7)
        vec = inst.update_stream().final_vector()
        assert vec.sum() == 1  # length n+1 minus n baseline


class TestHeavyHitterWorkloads:
    @pytest.mark.parametrize("p,phi", [(0.5, 0.25), (1.0, 0.125), (2.0, 0.25)])
    def test_planted_heavy_set(self, p, phi):
        inst = heavy_hitter_instance(300, p=p, phi=phi, heavy_count=3,
                                     seed=8)
        required = inst.required()
        # feasibility: at most phi^-p coordinates can be heavy at once
        assert 1 <= required.size <= int(np.floor(phi ** -p))
        norm = inst.norm
        assert np.all(np.abs(inst.vector[required]) >= phi * norm)

    def test_infeasible_phi_rejected(self):
        with pytest.raises(ValueError):
            heavy_hitter_instance(100, p=0.5, phi=0.9, seed=1)

    def test_forbidden_disjoint_from_required(self):
        inst = heavy_hitter_instance(300, p=1.0, phi=0.125, seed=9)
        assert not set(inst.required()) & set(inst.forbidden())
