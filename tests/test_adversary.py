"""Failure-injection tests: structures under adversarial workloads."""

import numpy as np
import pytest

from repro.apps.heavy_hitters import (CountSketchHeavyHitters,
                                      is_valid_heavy_hitter_set)
from repro.core import L0Sampler, LpSamplerRound
from repro.recovery import SyndromeSparseRecovery
from repro.sketch import CountSketch, err_m2
from repro.streams import vector_to_stream
from repro.streams.adversary import (alternating_sign_wave,
                                     cancellation_storm, heavy_tail_decoy,
                                     threshold_straddler)


class TestCancellationStorm:
    def test_final_vector_is_small(self):
        stream = cancellation_storm(500, storms=8, survivors=3, seed=1)
        vec = stream.final_vector()
        assert np.count_nonzero(vec) == 3
        assert np.abs(vec).max() < 10

    def test_l0_sampler_survives(self):
        """Only the 3 true survivors may ever be sampled, despite the
        10^6-magnitude storms that crossed the structure."""
        stream = cancellation_storm(500, storms=8, survivors=3, seed=2)
        survivors = set(np.flatnonzero(stream.final_vector()).tolist())
        hits = 0
        for seed in range(15):
            sampler = L0Sampler(500, delta=0.25, seed=seed)
            stream.apply_to(sampler)
            result = sampler.sample()
            if not result.failed:
                assert result.index in survivors
                hits += 1
        assert hits >= 12

    def test_sparse_recovery_exact_after_storm(self):
        stream = cancellation_storm(500, storms=15, survivors=4, seed=3)
        recovery = SyndromeSparseRecovery(500, sparsity=6, seed=3)
        stream.apply_to(recovery)
        result = recovery.recover()
        assert not result.dense
        assert np.array_equal(result.to_dense(500),
                              stream.final_vector())

    def test_lp_round_never_outputs_storm_coordinate(self):
        stream = cancellation_storm(400, storms=10, survivors=3, seed=4)
        survivors = set(np.flatnonzero(stream.final_vector()).tolist())
        for seed in range(25):
            rnd = LpSamplerRound(400, 1.0, 0.4, seed=seed)
            stream.apply_to(rnd)
            result = rnd.sample()
            if not result.failed:
                assert result.index in survivors


class TestHeavyTailDecoy:
    def test_count_sketch_error_tracks_tail_not_l2(self):
        """On the decoy, ||x||_2 >> Err^m_2(x)^... actually the decoy
        makes the tail fat; Lemma 1 must still hold with the TAIL norm."""
        n, m = 1000, 10
        vec = heavy_tail_decoy(n, m, seed=5)
        cs = CountSketch(n, m=m, rows=13, seed=5)
        vector_to_stream(vec, seed=5).apply_to(cs)
        worst = np.abs(cs.estimate_all() - vec).max()
        assert worst <= 1.5 * err_m2(vec, m) / np.sqrt(m)

    def test_decoy_has_fat_tail(self):
        vec = heavy_tail_decoy(1000, 10, seed=6)
        assert err_m2(vec, 10) > 0.3 * np.linalg.norm(vec)


class TestThresholdStraddler:
    def test_instance_straddles(self):
        p, phi = 1.0, 0.1
        vec = threshold_straddler(300, p, phi, seed=7)
        norm = float(np.abs(vec).sum())
        mags = np.abs(vec)
        assert (mags >= phi * norm).sum() >= 1
        assert (mags <= 0.5 * phi * norm).all() is not True

    def test_heavy_hitters_remain_valid(self):
        """Straddling instances (15% margins around the two thresholds)
        must still produce valid sets at the usual whp rate; with a 5%
        margin the norm-estimation noise would dominate, which is the
        honest limit of the phi/2-vs-phi separation."""
        p, phi = 1.0, 0.125
        valid = 0
        for seed in range(6):
            vec = threshold_straddler(300, p, phi, margin=0.15, seed=seed)
            algo = CountSketchHeavyHitters(300, p, phi, seed=seed + 50)
            vector_to_stream(vec, seed=seed).apply_to(algo)
            valid += is_valid_heavy_hitter_set(algo.heavy_hitters(), vec,
                                               p, phi)
        assert valid >= 5


class TestAlternatingWave:
    def test_final_vector_is_pm1(self):
        stream = alternating_sign_wave(256, 4096, seed=8)
        vec = stream.final_vector()
        # values concentrate near zero; the stream is balanced
        assert abs(int(vec.sum())) <= 1

    def test_l0_sampler_on_wave(self):
        stream = alternating_sign_wave(256, 2048, seed=9)
        vec = stream.final_vector()
        support = set(np.flatnonzero(vec).tolist())
        if not support:
            pytest.skip("wave fully cancelled for this seed")
        hits = 0
        for seed in range(10):
            sampler = L0Sampler(256, delta=0.25, seed=seed)
            stream.apply_to(sampler)
            result = sampler.sample()
            if not result.failed:
                assert result.index in support
                assert result.estimate == vec[result.index]
                hits += 1
        assert hits >= 7
