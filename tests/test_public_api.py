"""The public API surface: imports, __all__, docstring discipline."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = ["repro.core", "repro.apps", "repro.comm", "repro.sketch",
               "repro.recovery", "repro.hashing", "repro.streams",
               "repro.space", "repro.baselines", "repro.engine",
               "repro.service"]


class TestImports:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} needs a module docstring"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, name):
        module = importlib.import_module(name)
        for export in getattr(module, "__all__", []):
            assert hasattr(module, export), f"{name}.{export}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestDocumentationDiscipline:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_every_public_class_and_function_documented(self, name):
        module = importlib.import_module(name)
        missing = []
        for export in getattr(module, "__all__", []):
            obj = getattr(module, export)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    missing.append(export)
        assert not missing, f"undocumented exports in {name}: {missing}"

    def test_public_methods_documented_on_samplers(self):
        from repro import DuplicateFinder, L0Sampler, LpSampler

        for cls in (LpSampler, L0Sampler, DuplicateFinder):
            for attr, member in vars(cls).items():
                if attr.startswith("_") or not callable(member):
                    continue
                assert inspect.getdoc(getattr(cls, attr)), \
                    f"{cls.__name__}.{attr} lacks a docstring"


class TestErrorContracts:
    """Misuse raises ValueError; FAIL is a value, not an exception."""

    def test_value_errors(self):
        from repro import CountSketchHeavyHitters, L0Sampler, LpSampler

        with pytest.raises(ValueError):
            LpSampler(100, p=2.0, eps=0.25)
        with pytest.raises(ValueError):
            LpSampler(100, p=1.0, eps=1.5)
        with pytest.raises(ValueError):
            L0Sampler(100, delta=0.0)
        with pytest.raises(ValueError):
            CountSketchHeavyHitters(100, p=3.0, phi=0.1)

    def test_fail_is_a_value(self):
        from repro import L0Sampler

        result = L0Sampler(64, seed=1).sample()
        assert result.failed and result.reason
