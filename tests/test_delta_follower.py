"""Delta checkpoints and the warm-standby follower.

The contract under test is byte-identity: restoring a base checkpoint
plus an ordered delta chain yields exactly the state of a full
checkpoint at the final epoch, and a follower that tailed the same
frames promotes to a pipeline whose ``merged()`` equals the leader's —
for every shardable structure, across ``reshard()``, with typed errors
for corrupted, out-of-order and wrong-base frames.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (DELTA_BASE_RETENTION, FollowerPipeline,
                          DeltaError, OutOfOrderDelta, ShardedPipeline,
                          WrongBaseDelta, checkpoint as
                          snapshot_structure)
from repro.sketch import CountMin, CountSketch

from _engine_cases import (SHARDABLE, SHARDABLE_IDS, random_turnstile,
                           states_equal)

N = 256


def _batches(parts: int, length: int = 1200, seed: int = 5):
    indices, deltas = random_turnstile(N, length, seed)
    return list(zip(np.array_split(indices, parts),
                    np.array_split(deltas, parts)))


def _leader(case, shards: int = 3, seed: int = 7) -> ShardedPipeline:
    return ShardedPipeline(lambda: case.factory(N, seed), shards=shards,
                           chunk_size=64)


def _merged_bytes(pipeline) -> bytes:
    return snapshot_structure(pipeline.merged())


class TestDeltaChain:

    @pytest.mark.parametrize("case", SHARDABLE, ids=SHARDABLE_IDS)
    def test_chain_restores_byte_identical(self, case):
        batches = _batches(3)
        with _leader(case) as leader:
            leader.ingest(*batches[0])
            base = leader.checkpoint()
            epochs = [leader.updates_ingested]
            chain = []
            for idx, dlt in batches[1:]:
                leader.ingest(idx, dlt)
                chain.append(leader.checkpoint(since=epochs[-1]))
                epochs.append(leader.updates_ingested)
            full = leader.checkpoint()
            leader_bytes = _merged_bytes(leader)
            final_epoch = leader.updates_ingested

        with ShardedPipeline.restore(base, deltas=chain) as restored:
            assert restored.updates_ingested == final_epoch
            assert _merged_bytes(restored) == leader_bytes
        with ShardedPipeline.restore(full) as from_full:
            assert _merged_bytes(from_full) == leader_bytes

    @pytest.mark.parametrize("compress", ["none", "zlib"])
    def test_compression_choices_round_trip(self, compress):
        batches = _batches(2)
        with ShardedPipeline(lambda: CountMin(N, buckets=16, rows=5),
                             shards=2, chunk_size=64) as leader:
            leader.ingest(*batches[0])
            base = leader.checkpoint(compress=compress)
            epoch = leader.updates_ingested
            leader.ingest(*batches[1])
            delta = leader.checkpoint(since=epoch, compress=compress)
            expect = _merged_bytes(leader)
        with ShardedPipeline.restore(base, deltas=[delta]) as restored:
            assert _merged_bytes(restored) == expect

    def test_delta_survives_reshard_between_epochs(self):
        batches = _batches(2)
        with ShardedPipeline(lambda: CountSketch(N, m=6, rows=5),
                             shards=2, chunk_size=64) as leader:
            leader.ingest(*batches[0])
            base = leader.checkpoint()
            epoch = leader.updates_ingested
            leader.reshard(5)     # the delta is of the *merged* state
            leader.ingest(*batches[1])
            delta = leader.checkpoint(since=epoch)
            expect = _merged_bytes(leader)
        with ShardedPipeline.restore(base, deltas=[delta]) as restored:
            assert _merged_bytes(restored) == expect

    def test_restore_with_deltas_accepts_new_shard_count(self):
        batches = _batches(2)
        with ShardedPipeline(lambda: CountMin(N, buckets=16, rows=5),
                             shards=2, chunk_size=64) as leader:
            leader.ingest(*batches[0])
            base = leader.checkpoint()
            epoch = leader.updates_ingested
            leader.ingest(*batches[1])
            delta = leader.checkpoint(since=epoch)
            expect = _merged_bytes(leader)
        with ShardedPipeline.restore(base, shards=5,
                                     deltas=[delta]) as restored:
            assert restored.shards == 5
            assert _merged_bytes(restored) == expect

    def test_sparse_delta_much_smaller_than_full(self):
        # ~1% churn between the epochs: the delta frame (zlib over
        # mostly-zero sections) must undercut the full checkpoint.
        with ShardedPipeline(lambda: CountMin(N, buckets=512, rows=7),
                             shards=2, chunk_size=64) as leader:
            indices, deltas = random_turnstile(N, 2000, 11)
            leader.ingest(indices, deltas)
            base = leader.checkpoint()
            epoch = leader.updates_ingested
            leader.ingest(np.array([3, 9], dtype=np.int64),
                          np.array([1, 1], dtype=np.int64))
            delta = leader.checkpoint(since=epoch)
            full = leader.checkpoint()
        assert len(delta) < len(full) / 2


class TestDeltaBases:

    def test_unretained_epoch_is_loud(self):
        with ShardedPipeline(lambda: CountMin(N, buckets=16, rows=5),
                             shards=2) as leader:
            leader.checkpoint()
            with pytest.raises(ValueError, match="retained"):
                leader.checkpoint(since=12345)

    def test_base_ring_evicts_oldest(self):
        with ShardedPipeline(lambda: CountMin(N, buckets=16, rows=5),
                             shards=2, chunk_size=8) as leader:
            epochs = []
            for round_ in range(DELTA_BASE_RETENTION + 2):
                leader.ingest(np.array([round_], dtype=np.int64),
                              np.array([1], dtype=np.int64))
                leader.checkpoint()
                epochs.append(leader.updates_ingested)
            assert len(leader.delta_epochs) == DELTA_BASE_RETENTION
            assert epochs[0] not in leader.delta_epochs
            with pytest.raises(ValueError, match="retained"):
                leader.checkpoint(since=epochs[0])


class TestDeltaErrors:

    def _base_and_chain(self, seed=5):
        batches = _batches(3, seed=seed)
        leader = ShardedPipeline(lambda: CountMin(N, buckets=16, rows=5),
                                 shards=2, chunk_size=64)
        with leader:
            leader.ingest(*batches[0])
            base = leader.checkpoint()
            epochs = [leader.updates_ingested]
            chain = []
            for idx, dlt in batches[1:]:
                leader.ingest(idx, dlt)
                chain.append(leader.checkpoint(since=epochs[-1]))
                epochs.append(leader.updates_ingested)
        return base, chain

    def test_out_of_order_chain_rejected(self):
        base, chain = self._base_and_chain()
        with pytest.raises(OutOfOrderDelta):
            ShardedPipeline.restore(base, deltas=[chain[1]])
        with pytest.raises(OutOfOrderDelta):
            ShardedPipeline.restore(base, deltas=[chain[1], chain[0]])

    def test_repeated_delta_rejected(self):
        base, chain = self._base_and_chain()
        with pytest.raises(OutOfOrderDelta):
            ShardedPipeline.restore(base, deltas=[chain[0], chain[0]])

    def test_wrong_base_rejected(self):
        base, _ = self._base_and_chain(seed=5)
        other_base, other_chain = self._base_and_chain(seed=99)
        # same epochs (same batch sizes), different state bytes
        with pytest.raises(WrongBaseDelta):
            ShardedPipeline.restore(base, deltas=[other_chain[0]])

    def test_corrupted_delta_rejected(self):
        base, chain = self._base_and_chain()
        mangled = bytearray(chain[0])
        mangled[-1] ^= 0xFF
        with pytest.raises(DeltaError):
            ShardedPipeline.restore(base, deltas=[bytes(mangled)])

    def test_foreign_structure_delta_rejected(self):
        base, _ = self._base_and_chain()
        batches = _batches(2)
        with ShardedPipeline(lambda: CountSketch(N, m=6, rows=5),
                             shards=2, chunk_size=64) as other:
            other.ingest(*batches[0])
            other.checkpoint()
            epoch = other.updates_ingested
            other.ingest(*batches[1])
            foreign = other.checkpoint(since=epoch)
        with pytest.raises(DeltaError):
            ShardedPipeline.restore(base, deltas=[foreign])

    def test_non_delta_frame_in_chain_rejected(self):
        base, _ = self._base_and_chain()
        with pytest.raises(DeltaError):
            ShardedPipeline.restore(base, deltas=[base])


class TestFollower:

    def _stream(self, case, parts=4, shards=3):
        """(base blob, delta frames, leader merged bytes, final epoch)."""
        batches = _batches(parts)
        with _leader(case, shards=shards) as leader:
            leader.ingest(*batches[0])
            base = leader.checkpoint()
            epoch = leader.updates_ingested
            chain = []
            for idx, dlt in batches[1:]:
                leader.ingest(idx, dlt)
                chain.append(leader.checkpoint(since=epoch))
                epoch = leader.updates_ingested
            return base, chain, _merged_bytes(leader), epoch

    @pytest.mark.parametrize("case", SHARDABLE, ids=SHARDABLE_IDS)
    def test_follower_matches_leader_at_every_ack(self, case):
        base, chain, leader_bytes, final_epoch = self._stream(case)
        follower = FollowerPipeline(base)
        assert follower.follow(chain) == len(chain)
        assert follower.epoch == final_epoch
        assert snapshot_structure(follower.merged()) == leader_bytes

    @pytest.mark.parametrize("case", SHARDABLE, ids=SHARDABLE_IDS)
    def test_promotion_equals_offline_pipeline(self, case):
        base, chain, leader_bytes, _ = self._stream(case)
        follower = FollowerPipeline(base)
        follower.follow(chain)
        with follower.promote(shards=2) as promoted:
            assert snapshot_structure(promoted.merged()) == leader_bytes
            # The promoted pipeline is live: it keeps ingesting.
            promoted.ingest(np.array([1], dtype=np.int64),
                            np.array([1], dtype=np.int64))

    def test_follow_is_idempotent(self):
        case = SHARDABLE[0]
        base, chain, leader_bytes, _ = self._stream(case)
        follower = FollowerPipeline(base)
        assert follower.follow(chain) == len(chain)
        assert follower.follow(chain) == 0          # re-read acked frames
        assert snapshot_structure(follower.merged()) == leader_bytes

    def test_strict_apply_rejects_gaps(self):
        base, chain, _, _ = self._stream(SHARDABLE[0])
        follower = FollowerPipeline(base)
        with pytest.raises(OutOfOrderDelta):
            follower.apply(chain[1])

    def test_follow_file_tails_partial_writes(self, tmp_path):
        base, chain, leader_bytes, final_epoch = self._stream(SHARDABLE[0])
        path = tmp_path / "stream.wire"
        path.write_bytes(chain[0] + chain[1][:9])   # mid-append tail
        follower = FollowerPipeline(base)
        applied, offset = follower.follow_file(path)
        assert applied == 1
        assert offset == len(chain[0])
        path.write_bytes(chain[0] + b"".join(chain[1:]))
        applied, offset = follower.follow_file(path, start=offset)
        assert applied == len(chain) - 1
        assert offset == path.stat().st_size
        assert follower.epoch == final_epoch
        assert snapshot_structure(follower.merged()) == leader_bytes

    def test_acked_epochs_recorded(self):
        base, chain, _, final_epoch = self._stream(SHARDABLE[0])
        follower = FollowerPipeline(base)
        follower.follow(chain)
        assert follower.acked_epochs[-1] == final_epoch
        assert len(follower.acked_epochs) == len(chain) + 1


class TestDeltaProcessBackend:
    """Delta restore and promotion under the process backend (runs in
    the CI worker lane; deselected from the fast lane)."""

    def test_chain_restores_into_process_backend(self):
        batches = _batches(2)
        with ShardedPipeline(lambda: CountMin(N, buckets=16, rows=5),
                             shards=2, chunk_size=64) as leader:
            leader.ingest(*batches[0])
            base = leader.checkpoint()
            epoch = leader.updates_ingested
            leader.ingest(*batches[1])
            delta = leader.checkpoint(since=epoch)
            expect = _merged_bytes(leader)
        with ShardedPipeline.restore(base, backend="process",
                                     deltas=[delta]) as restored:
            assert _merged_bytes(restored) == expect

    def test_follower_promotes_to_process_backend(self):
        batches = _batches(2)
        with ShardedPipeline(lambda: CountMin(N, buckets=16, rows=5),
                             shards=2, chunk_size=64) as leader:
            leader.ingest(*batches[0])
            base = leader.checkpoint()
            epoch = leader.updates_ingested
            leader.ingest(*batches[1])
            delta = leader.checkpoint(since=epoch)
            expect = _merged_bytes(leader)
        follower = FollowerPipeline(base)
        follower.follow([delta])
        with follower.promote(backend="process", shards=2) as promoted:
            assert _merged_bytes(promoted) == expect
