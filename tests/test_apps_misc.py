"""Tests for positive-coordinate finding and moment estimation."""

import numpy as np
import pytest

from repro.apps.moments import FrequencyMomentEstimator
from repro.apps.positive import NO_POSITIVE, PositiveCoordinateFinder
from repro.streams import vector_to_stream, zipf_vector


class TestPositiveCoordinate:
    def test_no_positive_certified_when_sparse(self):
        n = 128
        finder = PositiveCoordinateFinder(n, s_bound=2, delta=0.3, seed=1,
                                          sampler_rounds=4)
        finder.update(5, -3)
        finder.update(90, -1)
        assert finder.result() == NO_POSITIVE

    def test_positive_found_in_sparse_regime(self):
        n = 128
        finder = PositiveCoordinateFinder(n, s_bound=2, delta=0.3, seed=2,
                                          sampler_rounds=4)
        finder.update(5, -3)
        finder.update(17, 4)
        result = finder.result()
        assert result != NO_POSITIVE
        assert not result.failed and result.index == 17

    def test_positive_found_in_dense_regime(self):
        """Many negatives force the sampler path (Theorem 3 flavour)."""
        n, found = 128, 0
        rng = np.random.default_rng(3)
        for seed in range(5):
            finder = PositiveCoordinateFinder(n, s_bound=1, delta=0.2,
                                              seed=seed, sampler_rounds=6)
            vec = np.full(n, -1, dtype=np.int64)
            winners = rng.choice(n, size=n // 2 + 10, replace=False)
            vec[winners] = 2
            vector_to_stream(vec, seed=seed).apply_to(finder)
            result = finder.result()
            if result != NO_POSITIVE and not result.failed:
                assert vec[result.index] > 0
                found += 1
        assert found >= 3

    def test_zero_vector(self):
        finder = PositiveCoordinateFinder(64, s_bound=1, delta=0.3, seed=4,
                                          sampler_rounds=3)
        assert finder.result() == NO_POSITIVE


class TestMoments:
    def test_rejects_q_below_one(self):
        with pytest.raises(ValueError):
            FrequencyMomentEstimator(100, q=0.5)

    def test_f1_is_l1_norm(self):
        """q = 1 reduces to estimating ||x||_1 itself."""
        n = 200
        vec = zipf_vector(n, scale=300, seed=5)
        est = FrequencyMomentEstimator(n, q=1.0, samples=8, seed=5)
        vector_to_stream(vec, seed=5).apply_to(est)
        value = est.estimate()
        truth = float(np.abs(vec).sum())
        assert value is not None
        assert value == pytest.approx(truth, rel=0.6)

    def test_f3_order_of_magnitude(self):
        n = 200
        vec = zipf_vector(n, scale=100, seed=6)
        est = FrequencyMomentEstimator(n, q=3.0, samples=24, seed=6)
        vector_to_stream(vec, seed=6).apply_to(est)
        value = est.estimate()
        truth = float((np.abs(vec).astype(float) ** 3).sum())
        assert value is not None
        assert truth / 30 <= value <= truth * 30

    def test_zero_vector_estimates_zero(self):
        est = FrequencyMomentEstimator(100, q=2.0, samples=4, seed=7)
        assert est.estimate() == 0.0
