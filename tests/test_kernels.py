"""Kernel-equivalence property suite for the fused ingestion fast path.

The fused kernels (stacked hash evaluation + batched scatter/reduce)
must be *byte-identical* to the historical per-row paths, which every
sketch keeps as ``_reference_update_many``.  These tests pin that
contract for every fused sketch type over random batches including the
edge shapes (empty, singleton, duplicate indices, multi-batch
sequences), plus the underlying primitives: stacked hash families
against their per-row originals, the counter-RNG block API against the
per-stream calls, and the flattened-bincount scatter kernel against
``np.add.at``.
"""

import numpy as np
import pytest

from repro.engine import state_arrays
from repro.hashing.kwise import BucketHash, KWiseHash, SignHash, derive_rngs
from repro.hashing.prng import CounterRNG
from repro.sketch import AMSSketch, CountMin, CountSketch, StableSketch
from repro.sketch.kernels import scatter_add_flat, scatter_add_rows
from repro.sketch.l0_estimator import L0Estimator

UNIVERSE = 1 << 12

FUSED_SKETCHES = [
    ("CountSketch", lambda s: CountSketch(UNIVERSE, m=8, rows=5, seed=s)),
    ("CountMin", lambda s: CountMin(UNIVERSE, buckets=48, rows=5, seed=s)),
    ("AMSSketch", lambda s: AMSSketch(UNIVERSE, groups=5, per_group=4,
                                      seed=s)),
    ("StableSketch", lambda s: StableSketch(UNIVERSE, 0.75, rows=11,
                                            seed=s)),
    ("L0Estimator", lambda s: L0Estimator(UNIVERSE, reps=5, seed=s)),
]
FUSED_IDS = [name for name, _ in FUSED_SKETCHES]


def _batches(rng, count=6):
    """Random turnstile batches incl. empty, singleton and duplicates."""
    batches = [
        (np.array([], dtype=np.int64), np.array([], dtype=np.int64)),
        (np.array([7], dtype=np.int64), np.array([3], dtype=np.int64)),
        (np.array([5, 5, 5, 5], dtype=np.int64),
         np.array([1, -2, 3, -4], dtype=np.int64)),
    ]
    for _ in range(count):
        n = int(rng.integers(1, 5000))
        batches.append((rng.integers(0, UNIVERSE, size=n),
                        rng.integers(-50, 50, size=n)))
    rng.shuffle(batches)
    return batches


@pytest.mark.parametrize("name,build", FUSED_SKETCHES, ids=FUSED_IDS)
class TestFusedMatchesReference:
    def test_tables_byte_identical_over_batch_sequence(self, name, build):
        """fused == reference bit for bit, float state included, after
        a whole sequence of batches (not just from a zero table)."""
        rng = np.random.default_rng(101)
        fused, reference = build(3), build(3)
        for indices, deltas in _batches(rng):
            fused.update_many(indices, deltas)
            reference._reference_update_many(indices, deltas)
            for mine, theirs in zip(state_arrays(fused),
                                    state_arrays(reference)):
                assert np.array_equal(mine, theirs)

    def test_single_update_matches(self, name, build):
        fused, reference = build(5), build(5)
        fused.update(42, -7)
        reference._reference_update_many(np.array([42]), np.array([-7]))
        for mine, theirs in zip(state_arrays(fused),
                                state_arrays(reference)):
            assert np.array_equal(mine, theirs)

    def test_empty_batch_is_noop(self, name, build):
        sketch = build(1)
        before = [arr.copy() for arr in state_arrays(sketch)]
        sketch.update_many(np.array([], dtype=np.int64),
                           np.array([], dtype=np.int64))
        for arr, ref in zip(state_arrays(sketch), before):
            assert np.array_equal(arr, ref)


class TestStackedHashes:
    def test_stacked_kwise_rows_match_per_row(self):
        rngs = derive_rngs(11, 6)
        for k in (1, 2, 3, 5):
            hashes = [KWiseHash(k, r) for r in rngs]
            stacked = KWiseHash.stack(hashes)
            keys = np.random.default_rng(0).integers(
                0, 2**62, size=257, dtype=np.uint64)
            table = stacked(keys)
            assert table.shape == (len(hashes), keys.size)
            for j, h in enumerate(hashes):
                assert np.array_equal(table[j], h(keys))

    def test_stacked_bucket_rows_match_per_row(self):
        rngs = derive_rngs(13, 5)
        hashes = [BucketHash(2, 37, r) for r in rngs]
        stacked = BucketHash.stack(hashes)
        keys = np.arange(500, dtype=np.uint64)
        table = stacked(keys)
        for j, h in enumerate(hashes):
            assert np.array_equal(np.asarray(table[j], dtype=np.uint64),
                                  h(keys))

    def test_stacked_sign_rows_match_per_row(self):
        rngs = derive_rngs(17, 5)
        hashes = [SignHash(4, r) for r in rngs]
        stacked = SignHash.stack(hashes)
        keys = np.arange(500, dtype=np.uint64)
        table = stacked(keys)
        values = np.random.default_rng(1).standard_normal(keys.size)
        applied = stacked.apply(keys, values)
        for j, h in enumerate(hashes):
            assert np.array_equal(table[j], h(keys))
            assert np.array_equal(applied[j], h(keys) * values)

    def test_stack_rejects_mismatched_families(self):
        rngs = derive_rngs(19, 4)
        with pytest.raises(ValueError, match="share k"):
            KWiseHash.stack([KWiseHash(2, rngs[0]), KWiseHash(3, rngs[1])])
        with pytest.raises(ValueError, match="share a range"):
            BucketHash.stack([BucketHash(2, 8, rngs[2]),
                              BucketHash(2, 16, rngs[3])])
        with pytest.raises(ValueError, match="at least one"):
            KWiseHash.stack([])

    def test_stacked_k1_is_constant_rows(self):
        rngs = derive_rngs(23, 3)
        hashes = [KWiseHash(1, r) for r in rngs]
        stacked = KWiseHash.stack(hashes)
        keys = np.arange(40, dtype=np.uint64)
        table = stacked(keys)
        for j, h in enumerate(hashes):
            assert np.array_equal(table[j], h(keys))


class TestCounterRNGBlocks:
    def test_raw_and_uniform_blocks_match_per_stream(self):
        rng = CounterRNG(0xFEED)
        keys = np.arange(300, dtype=np.uint64)
        streams = np.array([0, 1, 5, 17], dtype=np.uint64)
        raw = rng.raw_block(keys, streams)
        uni = rng.uniform_block(keys, streams)
        for j, stream in enumerate(streams):
            assert np.array_equal(raw[j], rng.raw(keys, int(stream)))
            assert np.array_equal(uni[j], rng.uniform(keys, int(stream)))

    @pytest.mark.parametrize("p", [0.3, 0.75, 1.0, 1.4, 2.0])
    def test_stable_block_matches_per_stream(self, p):
        rng = CounterRNG(0xBEEF)
        keys = np.arange(200, dtype=np.uint64)
        streams = np.arange(6, dtype=np.uint64)
        block = rng.stable_block(p, keys, streams)
        for j in range(streams.size):
            assert np.array_equal(block[j], rng.stable(p, keys, stream=j))

    def test_stable_block_rejects_bad_p(self):
        rng = CounterRNG(1)
        with pytest.raises(ValueError):
            rng.stable_block(0.0, np.arange(4, dtype=np.uint64),
                             np.arange(2, dtype=np.uint64))


class TestScatterKernel:
    """The flattened-bincount scatter: equal to np.add.at into zeros."""

    def _reference(self, buckets, values, width, dtype):
        out = np.zeros((buckets.shape[0], width), dtype=dtype)
        weights = (values if values.ndim == 2
                   else np.broadcast_to(values, buckets.shape))
        for j in range(buckets.shape[0]):
            np.add.at(out[j], buckets[j].astype(np.int64), weights[j])
        return out

    def test_float_weights_match_add_at(self):
        rng = np.random.default_rng(3)
        buckets = rng.integers(0, 32, size=(5, 900)).astype(np.uint64)
        values = rng.standard_normal((5, 900))
        out = scatter_add_rows(buckets, values, 32)
        assert np.array_equal(out, self._reference(buckets, values, 32,
                                                   np.float64))

    def test_shared_1d_int_weights_match_add_at(self):
        rng = np.random.default_rng(4)
        buckets = rng.integers(0, 16, size=(3, 400)).astype(np.uint64)
        values = rng.integers(-9, 9, size=400)
        out = scatter_add_rows(buckets, values, 16)
        assert out.dtype == values.dtype
        assert np.array_equal(out, self._reference(buckets, values, 16,
                                                   np.int64))

    def test_int_weights_exact_beyond_float53(self):
        """Past the float64-exact window the kernel must switch to the
        native-int64 segmented sum and stay exact."""
        buckets = np.array([[0, 0, 1, 0, 1, 1]], dtype=np.uint64)
        values = np.array([2**60, 2**60, -(2**59), 5, 3, -(2**60)],
                          dtype=np.int64)
        out = scatter_add_rows(buckets, values[None, :], 2)
        expected = np.array([[2**60 + 2**60 + 5,
                              -(2**59) + 3 - 2**60]], dtype=np.int64)
        assert np.array_equal(out, expected)

    def test_empty_batch(self):
        out = scatter_add_flat(np.array([], dtype=np.int64),
                               np.array([], dtype=np.float64), 8)
        assert out.shape == (8,) and not out.any()

    def test_bincount_lane_matches_reference_from_fresh_state(self):
        """The alternative bincount scatter lane: byte-identical to the
        reference from a zero table (single batch — bincount folds the
        batch before the table add, so multi-batch float runs differ
        only in reassociation ulps, which is why it is a lane and not
        the default)."""
        rng = np.random.default_rng(9)
        indices = rng.integers(0, UNIVERSE, size=3000)
        deltas = rng.integers(-20, 20, size=3000)
        for build in (lambda: CountSketch(UNIVERSE, m=8, rows=5, seed=2),
                      lambda: CountMin(UNIVERSE, buckets=48, rows=5,
                                       seed=2)):
            lane, reference = build(), build()
            lane._bincount_update_many(indices, deltas)
            reference._reference_update_many(indices, deltas)
            assert np.array_equal(lane.table, reference.table)


class TestChunkedEstimation:
    """Satellite: estimate_all/estimate_many run in bounded blocks."""

    def _filled(self, seed=6):
        sketch = CountSketch(UNIVERSE, m=16, rows=7, seed=seed)
        rng = np.random.default_rng(seed)
        sketch.update_many(rng.integers(0, UNIVERSE, size=20_000),
                           rng.integers(-9, 9, size=20_000))
        return sketch

    def test_block_size_does_not_change_estimates(self, monkeypatch):
        sketch = self._filled()
        full = sketch.estimate_all()
        monkeypatch.setattr("repro.sketch.count_sketch._ESTIMATE_BLOCK",
                            257)
        assert np.array_equal(sketch.estimate_all(), full)
        some = np.arange(0, UNIVERSE, 3, dtype=np.int64)
        assert np.array_equal(sketch.estimate_many(some), full[some])

    def test_matches_per_row_gather(self):
        """The chunked gather equals the definitionally per-row
        median estimate."""
        sketch = self._filled(8)
        idx = np.random.default_rng(0).integers(0, UNIVERSE, size=500)
        samples = np.empty((sketch.rows, idx.size))
        for j in range(sketch.rows):
            buckets = sketch._bucket_hashes[j](idx).astype(np.int64)
            samples[j] = sketch._sign_hashes[j](idx) \
                * sketch.table[j, buckets]
        assert np.array_equal(sketch.estimate_many(idx),
                              np.median(samples, axis=0))

    def test_scalar_and_empty(self):
        sketch = self._filled(9)
        assert sketch.estimate(5) == float(sketch.estimate_all()[5])
        empty = sketch.estimate_many(np.array([], dtype=np.int64))
        assert empty.size == 0
