"""Tests tying measured structure sizes to the paper's formulas."""

import numpy as np
import pytest

from repro.theory import (ako_sampler_bits, constant_factor, fis_l0_bits,
                          heavy_hitters_bits,
                          lemma6_augmented_indexing_floor,
                          long_duplicates_bits, proposition5_ur_bits,
                          theorem1_sampler_bits, theorem2_l0_bits,
                          theorem3_duplicates_bits,
                          theorem4_short_duplicates_bits, theorem6_ur_floor,
                          theorem9_hh_floor)


class TestFormulas:
    def test_theorem1_p_branches(self):
        # p = 1 carries the extra log(1/eps)
        p1 = theorem1_sampler_bits(1 << 20, 1.0, 1 / 16)
        p15 = theorem1_sampler_bits(1 << 20, 1.5, 1 / 16)
        assert p1 > theorem1_sampler_bits(1 << 20, 0.5, 1 / 16)
        assert p15 == pytest.approx(16**1.5 * 400, rel=0.01)

    def test_theorem1_validation(self):
        with pytest.raises(ValueError):
            theorem1_sampler_bits(100, 2.0, 0.5)

    def test_theorem4_reduces_to_theorem3_at_s0(self):
        n = 1 << 12
        assert theorem4_short_duplicates_bits(n, 0) \
            == theorem3_duplicates_bits(n)

    def test_long_duplicates_crossover(self):
        n = 1 << 16
        # tiny s: sampler term wins;  huge s: position term wins
        assert long_duplicates_bits(n, 1) == pytest.approx(16.0**2)
        assert long_duplicates_bits(n, n) == pytest.approx(16.0)

    def test_hh_floor_matches_upper_shape(self):
        n, p, phi = 1 << 14, 1.5, 0.1
        assert heavy_hitters_bits(n, p, phi) \
            == pytest.approx(theorem9_hh_floor(n, p, phi))

    def test_proposition5_round_tradeoff(self):
        n = 1 << 12
        assert proposition5_ur_bits(n, 1) \
            == pytest.approx(12 * proposition5_ur_bits(n, 2))
        with pytest.raises(ValueError):
            proposition5_ur_bits(n, 3)

    def test_lemma6_floor(self):
        assert lemma6_augmented_indexing_floor(10, 16, 0.5) == 20.0

    def test_constant_factor_validation(self):
        with pytest.raises(ValueError):
            constant_factor(10, 0)


class TestMeasuredAgainstFormulas:
    """The implied constants must be stable across n — i.e. the measured
    structures really follow the claimed growth laws."""

    def test_lp_sampler_constant_stable(self):
        from repro.core import LpSamplerRound

        constants = []
        for log_n in (8, 12, 16):
            measured = LpSamplerRound(1 << log_n, 1.5, 0.25, seed=1) \
                .space_report().counter_total
            formula = theorem1_sampler_bits(1 << log_n, 1.5, 0.25, 0.5)
            constants.append(constant_factor(measured, formula))
        spread = max(constants) / min(constants)
        assert spread < 3.0

    def test_l0_sampler_constant_stable(self):
        from repro.core import L0Sampler

        constants = []
        for log_n in (8, 12, 16):
            measured = L0Sampler(1 << log_n, delta=0.25, seed=1) \
                .space_report().counter_total
            formula = theorem2_l0_bits(1 << log_n, 0.25)
            constants.append(constant_factor(measured, formula))
        assert max(constants) / min(constants) < 3.0

    def test_ako_constant_would_blow_up_under_log2_formula(self):
        """Sanity check of the method: the AKO baseline measured against
        the *log^2* formula must show a drifting constant (it is log^3),
        while against its own log^3 formula it is stable."""
        from repro.baselines.ako import AKOSamplerRound

        wrong, right = [], []
        for log_n in (8, 16):
            measured = AKOSamplerRound(1 << log_n, 1.5, 0.25, seed=1) \
                .space_report().counter_total
            wrong.append(constant_factor(
                measured, theorem1_sampler_bits(1 << log_n, 1.5, 0.25)))
            right.append(constant_factor(
                measured, ako_sampler_bits(1 << log_n, 1.5, 0.25)))
        assert wrong[1] / wrong[0] > 1.5          # drifts up with n
        assert 0.5 < right[1] / right[0] < 2.0    # stable

    def test_fis_constant_stable_under_log3(self):
        from repro.baselines.fis import FISL0Sampler

        constants = []
        for log_n in (8, 14):
            measured = FISL0Sampler(1 << log_n, seed=1) \
                .space_report().counter_total
            constants.append(constant_factor(measured,
                                             fis_l0_bits(1 << log_n)))
        assert 0.4 < constants[1] / constants[0] < 2.5
