"""Tests for sketch serialization (sketch/serialize.py)."""

import numpy as np
import pytest

from repro.recovery import (IBLTSparseRecovery, OneSparseDetector,
                            SyndromeSparseRecovery)
from repro.sketch import (AMSSketch, CountMin, CountSketch, L0Estimator,
                          StableSketch)
from repro.sketch.serialize import from_bytes, wire_bits
from repro.streams import sparse_vector, vector_to_stream, zipf_vector

ALL_SKETCHES = [
    lambda: CountSketch(200, m=5, rows=7, seed=3),
    lambda: CountMin(200, buckets=16, rows=5, seed=3),
    lambda: AMSSketch(200, groups=5, per_group=4, seed=3),
    lambda: StableSketch(200, 1.0, rows=15, seed=3),
    lambda: L0Estimator(200, reps=5, seed=3),
    lambda: SyndromeSparseRecovery(200, sparsity=4, seed=3),
    lambda: IBLTSparseRecovery(200, sparsity=4, seed=3),
    lambda: OneSparseDetector(200, seed=3),
]


@pytest.mark.parametrize("factory", ALL_SKETCHES,
                         ids=lambda f: type(f()).__name__)
class TestRoundtrip:
    def test_state_survives(self, factory):
        original = factory()
        vec = zipf_vector(200, scale=40, seed=5)
        vector_to_stream(vec, seed=5).apply_to(original)
        clone = from_bytes(original.to_bytes())
        for a, b in zip(original._state_arrays(), clone._state_arrays()):
            assert np.array_equal(a, b)

    def test_clone_continues_the_same_linear_map(self, factory):
        """The protocol property: updating the shipped clone equals
        updating the original — identical maps, identical state."""
        original = factory()
        original.update(7, 3)
        clone = from_bytes(original.to_bytes())
        original.update(11, -2)
        clone.update(11, -2)
        for a, b in zip(original._state_arrays(), clone._state_arrays()):
            assert np.array_equal(a, b)

    def test_wire_bits_positive(self, factory):
        assert wire_bits(factory()) > 0


class TestProtocolUseCase:
    def test_diff_through_the_wire(self):
        """Alice sketches x, ships bytes; Bob subtracts y; recovery
        finds the sparse difference — Proposition 5 made literal."""
        n = 300
        x = sparse_vector(n, 10, seed=1)
        y = x.copy()
        y[5] += 4
        alice = SyndromeSparseRecovery(n, sparsity=4, seed=9)
        alice.sketch_vector(vector=x)
        wire = alice.to_bytes()

        bob = from_bytes(wire)
        negative_y = -y
        bob.sketch_vector(vector=negative_y)
        result = bob.recover()
        assert not result.dense
        diff = result.to_dense(n)
        assert diff[5] == -4 and np.count_nonzero(diff) == 1


class TestWireFraming:
    def test_blob_is_a_sketch_wire_frame(self):
        from repro.wire import KIND_SKETCH, peek_header

        cs = CountSketch(100, m=4, rows=5, seed=1)
        kind, header = peek_header(cs.to_bytes())
        assert kind == KIND_SKETCH
        assert header["class"] == "CountSketch"
        assert header["params"] == cs._params()

    def test_compressed_blob_round_trips(self):
        cm = CountMin(200, buckets=16, rows=5, seed=3)
        vector_to_stream(zipf_vector(200, scale=40, seed=5),
                         seed=5).apply_to(cm)
        clone = from_bytes(cm.to_bytes(compress="zlib"))
        for a, b in zip(cm._state_arrays(), clone._state_arrays()):
            assert np.array_equal(a, b)

    def test_legacy_rpro1_blob_restores(self):
        """Blobs from the retired pre-wire encoder stay readable for
        one release."""
        import io
        import json

        original = CountMin(200, buckets=16, rows=5, seed=3)
        vector_to_stream(zipf_vector(200, scale=40, seed=5),
                         seed=5).apply_to(original)
        header = json.dumps({"class": "CountMin",
                             "params": original._params()}).encode()
        payload = io.BytesIO()
        np.savez(payload, **{f"a{i}": arr for i, arr in
                             enumerate(original._state_arrays())})
        blob = (b"RPRO1" + len(header).to_bytes(4, "big") + header
                + payload.getvalue())
        clone = from_bytes(blob)
        assert isinstance(clone, CountMin)
        for a, b in zip(original._state_arrays(), clone._state_arrays()):
            assert np.array_equal(a, b)


class TestErrorHandling:
    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            from_bytes(b"not a sketch at all")

    def test_wrong_class_via_classmethod(self):
        cs = CountSketch(100, m=4, rows=5, seed=1)
        with pytest.raises(ValueError):
            AMSSketch.from_bytes(cs.to_bytes())

    def test_unknown_class_rejected(self):
        cs = CountSketch(100, m=4, rows=5, seed=1)
        data = bytearray(cs.to_bytes())
        # corrupt the class name inside the JSON header
        data = bytes(data).replace(b"CountSketch", b"CountSketzz")
        with pytest.raises(ValueError):
            from_bytes(data)
