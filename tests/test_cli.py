"""Tests for the command-line interface (repro/cli.py)."""

import re
import subprocess
import sys

import pytest

from repro.cli import main


class TestInProcess:
    def test_sample(self, capsys):
        assert main(["sample", "-n", "256", "--count", "3",
                     "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "universe n=256" in out

    def test_l0(self, capsys):
        assert main(["l0", "-n", "256", "--support", "20",
                     "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert "exact" in out

    def test_duplicates(self, capsys):
        code = main(["duplicates", "-n", "128", "--seed", "2"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "stream of 129 items" in out

    def test_hh(self, capsys):
        assert main(["hh", "-n", "256", "--phi", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "valid: True" in out

    @pytest.mark.parametrize("structure", ["lp", "ako", "l0", "fis"])
    def test_space(self, capsys, structure):
        assert main(["space", structure, "--logn", "8", "10"]) == 0
        out = capsys.readouterr().out
        assert "bits" in out

    def test_engine_serial(self, capsys):
        assert main(["engine", "--structure", "l0", "-n", "512",
                     "--updates", "4000", "--shards", "3",
                     "--chunk", "512"]) == 0
        out = capsys.readouterr().out
        assert "backend=serial" in out
        assert "ingested 4000 updates" in out

    def test_engine_reshard_mid_stream(self, capsys):
        assert main(["engine", "--structure", "count-sketch", "-n", "512",
                     "--updates", "4000", "--shards", "2",
                     "--chunk", "512", "--reshard-at", "2000",
                     "--reshard-to", "5"]) == 0
        out = capsys.readouterr().out
        assert "resharded 2 -> 5 shards at update 2000" in out
        assert "ingested 4000 updates" in out

    def test_engine_reshard_default_target_doubles_k(self, capsys):
        assert main(["engine", "--structure", "l0", "-n", "512",
                     "--updates", "2000", "--shards", "3",
                     "--chunk", "256", "--reshard-at", "1000"]) == 0
        out = capsys.readouterr().out
        assert "resharded 3 -> 6 shards" in out

    def test_engine_reshard_flag_misuse_rejected(self, capsys):
        # --reshard-to without --reshard-at would silently do nothing
        assert main(["engine", "--structure", "l0", "-n", "256",
                     "--updates", "500", "--reshard-to", "4"]) == 2
        assert "requires --reshard-at" in capsys.readouterr().err
        # --reshard-to 0 must not silently fall back to the default
        assert main(["engine", "--structure", "l0", "-n", "256",
                     "--updates", "500", "--reshard-at", "250",
                     "--reshard-to", "0"]) == 2
        assert "at least 1" in capsys.readouterr().err

    def test_engine_delta_checkpoint(self, capsys):
        assert main(["engine", "--structure", "l0", "-n", "512",
                     "--updates", "4000", "--shards", "3",
                     "--chunk", "256",
                     "--checkpoint-format", "delta"]) == 0
        out = capsys.readouterr().out
        assert "ingested 4000 updates" in out
        assert "base at" in out and "delta to" in out

    def test_engine_delta_conflicts_with_reshard_demo(self, capsys):
        assert main(["engine", "--structure", "l0", "-n", "256",
                     "--updates", "500", "--reshard-at", "250",
                     "--checkpoint-format", "delta"]) == 2
        assert "drop --reshard-at" in capsys.readouterr().err

    def test_follow_round_trip(self, capsys, tmp_path):
        stream = tmp_path / "stream.wire"
        assert main(["follow", "--structure", "l0", "-n", "512",
                     "--updates", "4000", "--batches", "4",
                     "--shards", "3", "--chunk", "256",
                     "--stream", str(stream)]) == 0
        out = capsys.readouterr().out
        assert "follower applied 3 deltas" in out
        assert "byte-identical to leader merged(): True" in out
        assert "promoted sample:" in out
        assert stream.exists()             # --stream paths are kept

    def test_serve_checkpoint_out(self, capsys, tmp_path):
        from repro.service.snapshot import Snapshot

        path = tmp_path / "final.wire"
        assert main(["serve", "--structure", "hh", "-n", "512",
                     "--updates", "2000", "--batches", "2",
                     "--chunk", "256", "--checkpoint-out", str(path),
                     "--compress", "zlib"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint written:" in out
        snapshot = Snapshot.from_checkpoint(path.read_bytes())
        assert snapshot.epoch == 2000

    def test_engine_process_backend(self, capsys):
        assert main(["engine", "--structure", "count-sketch", "-n", "512",
                     "--updates", "4000", "--shards", "2",
                     "--chunk", "512", "--backend", "process"]) == 0
        out = capsys.readouterr().out
        assert "backend=process" in out
        assert "ingested 4000 updates" in out

    def test_engine_transport_requires_process_backend(self, capsys):
        assert main(["engine", "--structure", "l0", "-n", "256",
                     "--updates", "500", "--transport", "shm"]) == 2
        assert "requires --backend process" in capsys.readouterr().err

    def test_serve_transport_requires_process_backend(self, capsys):
        assert main(["serve", "--structure", "hh", "-n", "512",
                     "--updates", "1000", "--batches", "2",
                     "--transport", "pickle"]) == 2
        assert "requires --backend process" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_serve_default_round(self, capsys):
        assert main(["serve", "--structure", "hh", "-n", "512",
                     "--updates", "4000", "--batches", "4",
                     "--shards", "2", "--chunk", "256"]) == 0
        out = capsys.readouterr().out
        assert "serving hh x 2 shards" in out
        assert "heavy_hitters @ epoch 4000" in out
        assert "cache:" in out

    def test_serve_explicit_queries_and_cache_hits(self, capsys):
        assert main(["serve", "--structure", "count-sketch", "-n", "256",
                     "--updates", "2000", "--batches", "4",
                     "--chunk", "128", "--refresh-every", "1000",
                     "--queries", "point:7,point:9,top:3"]) == 0
        out = capsys.readouterr().out
        # Repeated ops with different args stay distinct in the report.
        assert "point:7 @ epoch 2000" in out
        assert "point:9 @ epoch 2000" in out
        assert "top:3 @ epoch 2000" in out
        # Two query rounds per held epoch -> the second is a pure hit.
        assert int(re.search(r"cache: (\d+) hits", out).group(1)) > 0

    def test_serve_unknown_query_rejected(self, capsys):
        assert main(["serve", "--structure", "hh", "-n", "256",
                     "--updates", "500",
                     "--queries", "frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "unknown query 'frobnicate'" in err
        assert "heavy_hitters" in err           # names the algebra

    def test_serve_unsupported_query_names_the_type(self, capsys):
        assert main(["serve", "--structure", "l0", "-n", "256",
                     "--updates", "500",
                     "--queries", "heavy_hitters"]) == 2
        err = capsys.readouterr().err
        assert "L0Sampler does not support 'heavy_hitters'" in err
        assert "sample_l0" in err               # ... and what it does

    def test_serve_malformed_query_args_rejected(self, capsys):
        assert main(["serve", "--structure", "hh", "-n", "256",
                     "--updates", "500",
                     "--queries", "heavy_hitters:lots"]) == 2
        assert "bad argument 'lots'" in capsys.readouterr().err
        assert main(["serve", "--structure", "l0", "-n", "256",
                     "--updates", "500",
                     "--queries", "support:3"]) == 2
        assert "takes no argument" in capsys.readouterr().err
        assert main(["serve", "--structure", "hh", "-n", "256",
                     "--updates", "500", "--queries", "inner"]) == 2
        assert "second snapshot operand" in capsys.readouterr().err

    def test_serve_topology_flags_validated(self, capsys):
        # These used to escape the validation block as raw tracebacks
        # from deep inside pipeline/workload construction.
        assert main(["serve", "-n", "256", "--updates", "500",
                     "--shards", "0"]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err
        assert main(["serve", "-n", "256", "--updates", "500",
                     "--chunk", "0"]) == 2
        assert "--chunk must be >= 1" in capsys.readouterr().err
        assert main(["serve", "-n", "2", "--updates", "500"]) == 2
        assert "--universe must be >= 8" in capsys.readouterr().err

    def test_serve_negative_refresh_and_cache_rejected(self, capsys):
        assert main(["serve", "-n", "256", "--updates", "500",
                     "--refresh-every", "-5"]) == 2
        assert "--refresh-every must be >= 1" in capsys.readouterr().err
        assert main(["serve", "-n", "256", "--updates", "500",
                     "--refresh-every", "0"]) == 2
        assert "--refresh-every must be >= 1" in capsys.readouterr().err
        assert main(["serve", "-n", "256", "--updates", "500",
                     "--cache-size", "-1"]) == 2
        assert "--cache-size must be >= 0" in capsys.readouterr().err
        assert main(["serve", "-n", "256", "--updates", "500",
                     "--keep", "0"]) == 2
        assert "--keep must be >= 1" in capsys.readouterr().err

    def test_serve_watermark_thresholds_validated(self, capsys):
        # One watermark without the other would silently disable the
        # autoscaler the user asked for.
        assert main(["serve", "-n", "256", "--updates", "500",
                     "--watermark-high", "100"]) == 2
        assert "must be given together" in capsys.readouterr().err
        # Inverted thresholds would flap between grow and shrink.
        assert main(["serve", "-n", "256", "--updates", "500",
                     "--watermark-high", "10",
                     "--watermark-low", "100"]) == 2
        assert "high > low" in capsys.readouterr().err
        assert main(["serve", "-n", "256", "--updates", "500",
                     "--watermark-high", "100", "--watermark-low", "10",
                     "--watermark-sustain", "0"]) == 2
        assert "sustain" in capsys.readouterr().err

    def test_serve_autoscales_under_load(self, capsys):
        # Real wall-clock offered load is far above 10 updates/s, so
        # the watermark trigger must grow the topology to the cap.
        assert main(["serve", "--structure", "hh", "-n", "256",
                     "--updates", "4000", "--batches", "8",
                     "--shards", "2", "--chunk", "128",
                     "--watermark-high", "10", "--watermark-low", "1",
                     "--watermark-sustain", "2",
                     "--max-shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "final K=4" in out

    def test_serve_autoscales_even_with_tiny_batches(self, capsys):
        # Batches below the policy's default min_batch (256) must not
        # silently disable the autoscaler the user configured: the CLI
        # pins min_batch to its actual batch size.
        assert main(["serve", "--structure", "hh", "-n", "256",
                     "--updates", "2000", "--batches", "20",
                     "--shards", "2", "--chunk", "64",
                     "--watermark-high", "10", "--watermark-low", "1",
                     "--watermark-sustain", "2",
                     "--max-shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "final K=4" in out

    def test_serve_process_backend(self, capsys):
        assert main(["serve", "--structure", "count-sketch", "-n", "256",
                     "--updates", "2000", "--batches", "2",
                     "--shards", "2", "--chunk", "256",
                     "--backend", "process"]) == 0
        out = capsys.readouterr().out
        assert "backend=process" in out
        assert "@ epoch 2000" in out


class TestDaemonFlags:
    def test_listen_is_required(self, capsys):
        assert main(["daemon"]) == 2
        assert "--listen HOST:PORT is required" in capsys.readouterr().err

    def test_malformed_listen_rejected(self, capsys):
        assert main(["daemon", "--listen", "no-port-here"]) == 2
        assert "--listen" in capsys.readouterr().err
        assert main(["daemon", "--listen", ":8080"]) == 2
        assert "--listen must be HOST:PORT" in capsys.readouterr().err
        assert main(["daemon", "--listen", "127.0.0.1:notaport"]) == 2
        assert "--listen port must be an integer" \
            in capsys.readouterr().err
        assert main(["daemon", "--listen", "127.0.0.1:70000"]) == 2
        assert "--listen port must be in 0..65535" \
            in capsys.readouterr().err
        assert main(["daemon", "--listen", "127.0.0.1:-1"]) == 2
        assert "--listen port must be in 0..65535" \
            in capsys.readouterr().err

    def test_replication_flags_require_listen(self, capsys):
        assert main(["daemon", "--max-subscribers", "2"]) == 2
        err = capsys.readouterr().err
        assert "replication flags" in err and "--listen" in err
        assert main(["daemon", "--replicate-compress", "zlib"]) == 2
        err = capsys.readouterr().err
        assert "--replicate-compress" in err

    def test_topology_and_server_flags_validated(self, capsys):
        # Validation must fire before anything binds a socket.
        assert main(["daemon", "--listen", "127.0.0.1:0",
                     "--shards", "0"]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err
        assert main(["daemon", "--listen", "127.0.0.1:0",
                     "--queue-depth", "0"]) == 2
        assert "--queue-depth must be >= 1" in capsys.readouterr().err
        assert main(["daemon", "--listen", "127.0.0.1:0",
                     "--drain-timeout", "0"]) == 2
        assert "--drain-timeout must be > 0" in capsys.readouterr().err
        assert main(["daemon", "--listen", "127.0.0.1:0",
                     "--listen", "127.0.0.1:0",
                     "--max-subscribers", "0"]) == 2
        assert "--max-subscribers must be >= 1" \
            in capsys.readouterr().err
        assert main(["daemon", "--listen", "127.0.0.1:0",
                     "--transport", "shm"]) == 2
        assert "--transport requires --backend process" \
            in capsys.readouterr().err


class TestClientFlags:
    def test_connect_is_required(self, capsys):
        assert main(["client", "ping"]) == 2
        assert "--connect HOST:PORT is required" \
            in capsys.readouterr().err

    def test_malformed_connect_rejected(self, capsys):
        assert main(["client", "ping", "--connect", "nope"]) == 2
        assert "--connect" in capsys.readouterr().err
        assert main(["client", "ping",
                     "--connect", "127.0.0.1:zzz"]) == 2
        assert "--connect port must be an integer" \
            in capsys.readouterr().err

    def test_query_requires_spec(self, capsys):
        assert main(["client", "query",
                     "--connect", "127.0.0.1:1"]) == 2
        assert "requires --queries" in capsys.readouterr().err

    def test_ingest_flags_validated(self, capsys):
        assert main(["client", "ingest", "--connect", "127.0.0.1:1",
                     "--updates", "0"]) == 2
        assert "--updates must be >= 1" in capsys.readouterr().err
        assert main(["client", "ingest", "--connect", "127.0.0.1:1",
                     "--batches", "0"]) == 2
        assert "--batches must be >= 1" in capsys.readouterr().err

    def test_connection_refused_is_exit_1(self, capsys):
        # Port 1 is reserved and never listening in the test env:
        # transport failure, not flag misuse.
        assert main(["client", "ping", "--connect", "127.0.0.1:1"]) == 1
        assert "error:" in capsys.readouterr().err


class TestAsModule:
    def test_python_dash_m(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "space", "l0",
             "--logn", "8"],
            capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0
        assert "bits" in proc.stdout
