"""Tests for the command-line interface (repro/cli.py)."""

import subprocess
import sys

import pytest

from repro.cli import main


class TestInProcess:
    def test_sample(self, capsys):
        assert main(["sample", "-n", "256", "--count", "3",
                     "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "universe n=256" in out

    def test_l0(self, capsys):
        assert main(["l0", "-n", "256", "--support", "20",
                     "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert "exact" in out

    def test_duplicates(self, capsys):
        code = main(["duplicates", "-n", "128", "--seed", "2"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "stream of 129 items" in out

    def test_hh(self, capsys):
        assert main(["hh", "-n", "256", "--phi", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "valid: True" in out

    @pytest.mark.parametrize("structure", ["lp", "ako", "l0", "fis"])
    def test_space(self, capsys, structure):
        assert main(["space", structure, "--logn", "8", "10"]) == 0
        out = capsys.readouterr().out
        assert "bits" in out

    def test_engine_serial(self, capsys):
        assert main(["engine", "--structure", "l0", "-n", "512",
                     "--updates", "4000", "--shards", "3",
                     "--chunk", "512"]) == 0
        out = capsys.readouterr().out
        assert "backend=serial" in out
        assert "ingested 4000 updates" in out

    def test_engine_reshard_mid_stream(self, capsys):
        assert main(["engine", "--structure", "count-sketch", "-n", "512",
                     "--updates", "4000", "--shards", "2",
                     "--chunk", "512", "--reshard-at", "2000",
                     "--reshard-to", "5"]) == 0
        out = capsys.readouterr().out
        assert "resharded 2 -> 5 shards at update 2000" in out
        assert "ingested 4000 updates" in out

    def test_engine_reshard_default_target_doubles_k(self, capsys):
        assert main(["engine", "--structure", "l0", "-n", "512",
                     "--updates", "2000", "--shards", "3",
                     "--chunk", "256", "--reshard-at", "1000"]) == 0
        out = capsys.readouterr().out
        assert "resharded 3 -> 6 shards" in out

    def test_engine_reshard_flag_misuse_rejected(self, capsys):
        # --reshard-to without --reshard-at would silently do nothing
        assert main(["engine", "--structure", "l0", "-n", "256",
                     "--updates", "500", "--reshard-to", "4"]) == 2
        assert "requires --reshard-at" in capsys.readouterr().err
        # --reshard-to 0 must not silently fall back to the default
        assert main(["engine", "--structure", "l0", "-n", "256",
                     "--updates", "500", "--reshard-at", "250",
                     "--reshard-to", "0"]) == 2
        assert "at least 1" in capsys.readouterr().err

    def test_engine_process_backend(self, capsys):
        assert main(["engine", "--structure", "count-sketch", "-n", "512",
                     "--updates", "4000", "--shards", "2",
                     "--chunk", "512", "--backend", "process"]) == 0
        out = capsys.readouterr().out
        assert "backend=process" in out
        assert "ingested 4000 updates" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestAsModule:
    def test_python_dash_m(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "space", "l0",
             "--logn", "8"],
            capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0
        assert "bits" in proc.stdout
