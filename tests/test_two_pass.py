"""Tests for the two-pass L0 sampler (the Section 4.1 remark)."""

import numpy as np
import pytest

from repro.core.two_pass import TwoPassL0Sampler
from repro.streams import sparse_vector, vector_to_stream


def run_two_pass(vector, seed, delta=0.25):
    sampler = TwoPassL0Sampler(vector.size, delta=delta, seed=seed)
    stream = vector_to_stream(vector, seed=7)
    stream.apply_to(sampler)          # pass 1
    sampler.finish_first_pass()
    stream.apply_to(sampler)          # pass 2 (identical replay)
    return sampler


class TestPassDiscipline:
    def test_sample_before_second_pass_fails(self):
        sampler = TwoPassL0Sampler(64, seed=1)
        assert sampler.sample().failed

    def test_double_finish_rejected(self):
        sampler = TwoPassL0Sampler(64, seed=1)
        sampler.finish_first_pass()
        with pytest.raises(RuntimeError):
            sampler.finish_first_pass()

    def test_bad_delta(self):
        with pytest.raises(ValueError):
            TwoPassL0Sampler(64, delta=2.0)

    def test_pass_counter(self):
        sampler = TwoPassL0Sampler(64, seed=1)
        assert sampler.current_pass == 1
        sampler.finish_first_pass()
        assert sampler.current_pass == 2


class TestCorrectness:
    @pytest.mark.parametrize("support", [3, 30, 120])
    def test_samples_support_with_exact_values(self, support):
        n = 512
        vec = sparse_vector(n, support, seed=support)
        hits = 0
        for seed in range(25):
            sampler = run_two_pass(vec, seed=seed)
            result = sampler.sample()
            if result.failed:
                continue
            hits += 1
            assert vec[result.index] != 0
            assert result.estimate == vec[result.index]
        assert hits >= 17

    def test_estimate_frozen_after_pass1(self):
        n = 256
        vec = sparse_vector(n, 40, seed=3)
        sampler = TwoPassL0Sampler(n, seed=3)
        vector_to_stream(vec, seed=7).apply_to(sampler)
        estimate = sampler.finish_first_pass()
        assert 40 / 8 <= estimate <= 40 * 8

    def test_zero_vector(self):
        sampler = TwoPassL0Sampler(128, seed=5)
        sampler.finish_first_pass()
        assert sampler.sample().failed


class TestSpaceShape:
    def test_no_level_pyramid(self):
        """The two-pass structure keeps O(log 1/delta) single-level
        recoveries, not the one-pass log n pyramid — its recovery
        counter count must not grow with n."""
        from repro.core import L0Sampler

        small2 = TwoPassL0Sampler(1 << 8, delta=0.25, seed=1)
        large2 = TwoPassL0Sampler(1 << 16, delta=0.25, seed=1)
        small2.finish_first_pass()
        large2.finish_first_pass()
        count_small = sum(c.counter_count
                          for c in small2.space_report().children[1:])
        count_large = sum(c.counter_count
                          for c in large2.space_report().children[1:])
        assert count_small == count_large
        # whereas the one-pass sampler's recovery counters grow ~log n
        one_small = L0Sampler(1 << 8, delta=0.25, seed=1)
        one_large = L0Sampler(1 << 16, delta=0.25, seed=1)
        assert (sum(c.counter_count
                    for c in one_large.space_report().children)
                > 1.5 * sum(c.counter_count
                            for c in one_small.space_report().children))
