"""The ``repro daemon`` process end to end: SIGTERM drain + restore.

These tests spawn real subprocesses (excluded from the CI fast lane;
the ``net`` job runs them under a hard timeout).  The property: kill
-TERM a loaded daemon and the checkpoint it writes on the way down
restores byte-identical to a serial oracle that replays exactly the
batches the daemon *acked* — acked-but-lost and applied-but-unacked
updates must both be impossible.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.cli import _service_structures
from repro.engine import ShardedPipeline, checkpoint as snapshot_structure
from repro.net import ReproClient

N = 256
SEED = 11


def _spawn_daemon(tmp_path, *extra):
    """Start a daemon on an ephemeral port; returns (proc, port)."""
    out = tmp_path / "final.rprowf"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "daemon",
         "--listen", "127.0.0.1:0", "--structure", "count-sketch",
         "-n", str(N), "--shards", "2", "--seed", str(SEED),
         "--checkpoint-out", str(out), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    line = proc.stdout.readline()
    if "on 127.0.0.1:" not in line:
        proc.kill()
        rest = proc.stdout.read()
        raise AssertionError(f"daemon failed to start: {line}{rest}")
    port = int(line.rsplit(":", 1)[1].split()[0])
    return proc, port, out


def _terminate(proc) -> str:
    proc.send_signal(signal.SIGTERM)
    try:
        stdout, _ = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise
    assert proc.returncode == 0, f"daemon exited {proc.returncode}"
    return stdout


def _oracle_bytes(acked_batches) -> bytes:
    factories, _ = _service_structures(N, SEED)
    with ShardedPipeline(factories["count-sketch"], shards=1,
                         chunk_size=64) as oracle:
        for indices, deltas in acked_batches:
            oracle.ingest(indices, deltas)
        oracle.flush()
        return snapshot_structure(oracle.merged())


class TestDaemonLifecycle:

    def test_sigterm_checkpoint_restores_byte_identical(self, tmp_path):
        proc, port, out = _spawn_daemon(tmp_path)
        rng = np.random.default_rng(0)
        acked = []
        try:
            with ReproClient("127.0.0.1", port) as client:
                for _ in range(4):
                    indices = rng.integers(0, N, size=200,
                                           dtype=np.int64)
                    deltas = rng.integers(-3, 6, size=200,
                                          dtype=np.int64)
                    reply = client.ingest(indices, deltas)
                    acked.append((indices, deltas))
                    assert reply.result["count"] == 200
                answer = client.query("top", count=3)
                assert answer.epoch == 800
        finally:
            stdout = _terminate(proc)
        assert "drained at epoch 800" in stdout
        assert "checkpoint written" in stdout

        restored = ShardedPipeline.restore(out.read_bytes())
        try:
            assert restored.updates_ingested == 800
            assert snapshot_structure(restored.merged()) \
                == _oracle_bytes(acked)
        finally:
            restored.close()

    def test_sigterm_mid_load_loses_nothing_acked(self, tmp_path):
        proc, port, out = _spawn_daemon(tmp_path)
        acked = []
        stop = threading.Event()

        def pound():
            rng = np.random.default_rng(1)
            try:
                with ReproClient("127.0.0.1", port) as client:
                    while not stop.is_set():
                        indices = rng.integers(0, N, size=50,
                                               dtype=np.int64)
                        deltas = rng.integers(-2, 5, size=50,
                                              dtype=np.int64)
                        reply = client.ingest(indices, deltas)
                        acked.append((reply.result["epoch"],
                                      indices, deltas))
            except (ConnectionError, TimeoutError, OSError):
                pass               # the drain closed the socket on us

        loader = threading.Thread(target=pound)
        loader.start()
        deadline = time.monotonic() + 15
        while not acked and time.monotonic() < deadline:
            time.sleep(0.05)
        assert acked, "loader never got an ack"
        stdout = _terminate(proc)       # SIGTERM under load
        stop.set()
        loader.join(timeout=30)
        assert not loader.is_alive()

        # Everything acked survived; nothing unacked was applied.
        final_epoch = acked[-1][0]
        assert f"drained at epoch {final_epoch}" in stdout
        restored = ShardedPipeline.restore(out.read_bytes())
        try:
            assert restored.updates_ingested == final_epoch
            assert snapshot_structure(restored.merged()) \
                == _oracle_bytes([(i, d) for _, i, d in acked])
        finally:
            restored.close()

    def test_sigterm_drain_with_live_subscriber(self, tmp_path):
        """SIGTERM while a follower is subscribed: the follower sees
        every delta up to the final flushed epoch, then the announced
        ``draining`` event, then a clean EOF — never a mid-stream cut
        it would misread as a failure and try to resync from."""
        from repro.net import SocketFollower

        proc, port, out = _spawn_daemon(tmp_path)
        rng = np.random.default_rng(2)
        acked = []
        try:
            with ReproClient("127.0.0.1", port) as client, \
                    SocketFollower("127.0.0.1", port) as follower:
                for _ in range(3):
                    indices = rng.integers(0, N, size=120,
                                           dtype=np.int64)
                    deltas = rng.integers(-2, 5, size=120,
                                          dtype=np.int64)
                    reply = client.ingest(indices, deltas)
                    acked.append((indices, deltas))
                follower.wait_for_epoch(reply.result["epoch"],
                                        timeout=30)
                stdout = _terminate(proc)
                # Drain the announced EOF: poll returns, flags the
                # clean close, and never burns a resync on it.
                deadline = time.monotonic() + 30
                while (not follower.closed_by_server
                       and time.monotonic() < deadline):
                    follower.poll(timeout=0.2)
                assert follower.closed_by_server
                assert follower.resyncs == 0
                assert follower.epoch == 360
                assert follower.acked_epochs == (0, 120, 240, 360)
                assert any(event.get("event") == "draining"
                           for event in follower.events)
                follower_bytes = snapshot_structure(follower.merged())
        finally:
            if proc.poll() is None:
                stdout = _terminate(proc)
        assert "drained at epoch 360" in stdout

        # Follower state == the daemon's final checkpoint == oracle.
        restored = ShardedPipeline.restore(out.read_bytes())
        try:
            final = snapshot_structure(restored.merged())
        finally:
            restored.close()
        assert follower_bytes == final == _oracle_bytes(acked)

    def test_daemon_refuses_double_bind(self, tmp_path):
        proc, port, _ = _spawn_daemon(tmp_path)
        try:
            clash = subprocess.run(
                [sys.executable, "-m", "repro", "daemon",
                 "--listen", f"127.0.0.1:{port}", "-n", str(N)],
                capture_output=True, text=True, timeout=60)
            assert clash.returncode != 0
        finally:
            _terminate(proc)
