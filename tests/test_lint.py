"""Tests for ``repro lint`` (src/repro/analysis).

Three layers:

* **fixture projects** — tiny synthetic packages in ``tmp_path``, one
  snippet per rule that must flag and a sibling that must pass, plus
  suppression/R000 behaviour and the JSON document shape;
* **kill tests** — copy the real ``src/`` tree, reintroduce each class
  of bug the gate exists to catch (oracle deleted, unseeded RNG in
  ``core/``, checkpoint payload reshaped without a version bump) and
  assert the CLI exits 1 naming the right rule, file and line;
* **the meta-test** — the live tree itself lints clean, so the gate in
  CI can never be red on an untouched checkout.
"""

from __future__ import annotations

import ast
import json
import shutil
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro import analysis
from repro.analysis import (LintConfig, LintContext, LintError, run_lint,
                            write_baseline)
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent

# ---------------------------------------------------------------------------
# fixture projects


def _mini_project(tmp_path: Path, files: dict[str, str],
                  ini_extra: str = "") -> Path:
    """A throwaway project: ``pkg/`` package, no inspection pass."""
    root = tmp_path / "proj"
    (root / "pkg").mkdir(parents=True)
    (root / "pkg" / "__init__.py").write_text("")
    for rel, source in files.items():
        path = root / "pkg" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    (root / "pytest.ini").write_text(textwrap.dedent(f"""\
        [repro-lint]
        package = pkg
        state_paths = core sketch
        numeric_paths = sketch
        audited_modules = sketch/kernels.py
        kernel_paths = sketch
        mp_modules = engine/workers.py engine/shm.py
        shm_modules = engine/shm.py
        inspect = false
        {ini_extra}
        """))
    return root


def _lint(root: Path, only: set[str]) -> list:
    return run_lint(root, config=LintConfig.load(root), only=only)


class TestRuleFixtures:
    def test_r001_flags_unseeded_rng_and_clocks(self, tmp_path):
        root = _mini_project(tmp_path, {"core/state.py": """\
            import numpy as np
            import random
            from time import perf_counter

            def jitter():
                rng = np.random.default_rng()
                np.random.seed(4)
                return random.random() + perf_counter()
        """})
        findings = _lint(root, only={"R001"})
        lines = {f.line for f in findings}
        assert all(f.rule == "R001" for f in findings)
        # import random, from time import, default_rng(), np.random.seed,
        # random.random(), perf_counter()
        assert {2, 3, 6, 7, 8} <= lines

    def test_r001_passes_seeded_randomness_and_exempt_paths(self, tmp_path):
        root = _mini_project(tmp_path, {
            "core/state.py": """\
                import numpy as np

                def make(seed):
                    ss = np.random.SeedSequence(seed)
                    return np.random.default_rng(ss)
            """,
            # bench/ is outside state_paths: exempt by construction
            "bench/clocky.py": """\
                import time

                def now():
                    return time.perf_counter()
            """})
        assert _lint(root, only={"R001"}) == []

    def test_r003_flags_fused_path_without_oracle(self, tmp_path):
        root = _mini_project(tmp_path, {"sketch/fast.py": """\
            class Fast:
                def update_many(self, indices, deltas):
                    return indices + deltas
        """}, ini_extra="kernel_tests = tests/test_kernels.py")
        (root / "tests").mkdir()
        (root / "tests" / "test_kernels.py").write_text("Fast = None\n")
        findings = _lint(root, only={"R003"})
        assert [f.rule for f in findings] == ["R003"]
        assert findings[0].path.endswith("sketch/fast.py")
        assert findings[0].line == 2        # the update_many def
        assert "_reference_update_many" in findings[0].message

    def test_r003_passes_paired_and_tested_class(self, tmp_path):
        root = _mini_project(tmp_path, {"sketch/fast.py": """\
            class Fast:
                def update_many(self, indices, deltas):
                    return indices + deltas

                def _reference_update_many(self, indices, deltas):
                    return indices + deltas
        """}, ini_extra="kernel_tests = tests/test_kernels.py")
        (root / "tests").mkdir()
        (root / "tests" / "test_kernels.py").write_text(
            "from pkg.sketch.fast import Fast\n")
        assert _lint(root, only={"R003"}) == []

    def test_r003_flags_oracle_missing_from_suite(self, tmp_path):
        root = _mini_project(tmp_path, {"sketch/fast.py": """\
            class Fast:
                def update_many(self, indices, deltas):
                    return indices + deltas

                def _reference_update_many(self, indices, deltas):
                    return indices + deltas
        """}, ini_extra="kernel_tests = tests/test_kernels.py")
        (root / "tests").mkdir()
        (root / "tests" / "test_kernels.py").write_text("OTHER = 1\n")
        findings = _lint(root, only={"R003"})
        assert len(findings) == 1
        assert "never named" in findings[0].message

    def test_r004_flags_mp_and_shm_outside_allowlist(self, tmp_path):
        root = _mini_project(tmp_path, {
            "core/rogue.py": """\
                import multiprocessing as mp
                from multiprocessing.shared_memory import SharedMemory

                def leak():
                    return SharedMemory(create=True, size=64)
            """,
            "engine/shm.py": """\
                from multiprocessing.shared_memory import SharedMemory

                def orphan(size):
                    return SharedMemory(create=True, size=size)
            """})
        findings = _lint(root, only={"R004"})
        assert all(f.rule == "R004" for f in findings)
        # rogue.py: two bad imports + one bad construction
        rogue = [f for f in findings if "rogue" in f.path]
        assert len(rogue) == 3
        # shm.py: create=True outside a lifecycle-owning class
        orphan = [f for f in findings if f.path.endswith("engine/shm.py")]
        assert len(orphan) == 1 and "close()" in orphan[0].message

    def test_r004_passes_owned_lifecycle(self, tmp_path):
        root = _mini_project(tmp_path, {"engine/shm.py": """\
            from multiprocessing.shared_memory import SharedMemory

            class Ring:
                def __init__(self, size):
                    self._shm = SharedMemory(create=True, size=size)

                def close(self):
                    self._shm.close()
                    self._shm.unlink()
        """})
        assert _lint(root, only={"R004"}) == []

    def test_r006_flags_dtypeless_literals_and_int_wrap(self, tmp_path):
        root = _mini_project(tmp_path, {"sketch/counters.py": """\
            import numpy as np

            class Counters:
                def __init__(self, n):
                    self.table = np.zeros(n, dtype=np.int64)
                    self.bad = np.zeros(n)

                def absorb(self, deltas):
                    self.table += np.asarray(deltas, dtype=np.int64)
                    local = np.ones(4, dtype=np.uint64)
                    return local % 7
        """})
        findings = _lint(root, only={"R006"})
        rules = {(f.line, f.rule) for f in findings}
        assert (6, "R006") in rules      # dtype-less np.zeros
        assert (9, "R006") in rules      # += on known int array
        assert (11, "R006") in rules     # % on known int array
        assert len(findings) == 3

    def test_r006_exempts_audited_module_arithmetic_only(self, tmp_path):
        root = _mini_project(tmp_path, {"sketch/kernels.py": """\
            import numpy as np

            def scatter(table, deltas):
                table += deltas          # audited: arithmetic exempt
                return np.zeros(3)       # dtype-less: still flagged
        """})
        findings = _lint(root, only={"R006"})
        assert [f.line for f in findings] == [5]

    def test_r007_flags_blocking_calls_in_coroutines(self, tmp_path):
        root = _mini_project(tmp_path, {"net/server.py": """\
            import queue
            import socket
            import time

            async def handler(conn):
                time.sleep(1)
                sock = socket.create_connection(("h", 1))
                data = conn.recv(4096)
                backlog = queue.Queue()
                return data, backlog
        """})
        findings = _lint(root, only={"R007"})
        assert all(f.rule == "R007" for f in findings)
        lines = {f.line for f in findings}
        assert {6, 7, 8, 9} <= lines
        assert any("asyncio.sleep" in f.message for f in findings)
        assert any("asyncio.Queue" in f.message for f in findings)

    def test_r007_flags_from_import_aliases(self, tmp_path):
        root = _mini_project(tmp_path, {"net/worker.py": """\
            from time import sleep as nap
            from queue import SimpleQueue

            async def tick():
                nap(0.1)
                return SimpleQueue()
        """})
        findings = _lint(root, only={"R007"})
        assert {f.line for f in findings} == {5, 6}

    def test_r007_passes_sync_helpers_and_async_idioms(self, tmp_path):
        root = _mini_project(tmp_path, {"net/client.py": """\
            import asyncio
            import socket
            import time

            def blocking_client(host, port):
                # Synchronous scope: blocking calls are the point.
                sock = socket.create_connection((host, port))
                time.sleep(0.1)
                return sock.recv(4096)

            async def server_loop(reader):
                await asyncio.sleep(0.1)
                backlog = asyncio.Queue()
                data = await reader.read(4096)

                def sync_helper():
                    # Nested sync scope inside the coroutine.
                    time.sleep(0.1)
                return data, backlog, sync_helper
        """})
        assert _lint(root, only={"R007"}) == []

    def test_r007_ignores_files_outside_async_paths(self, tmp_path):
        root = _mini_project(tmp_path, {"core/loop.py": """\
            import time

            async def helper():
                time.sleep(1)
        """})
        assert _lint(root, only={"R007"}) == []

    def test_r007_suppression_works(self, tmp_path):
        root = _mini_project(tmp_path, {"net/server.py": """\
            import time

            async def handler():
                time.sleep(1)  # repro-lint: disable=R007 -- startup only
        """})
        assert _lint(root, only={"R007"}) == []

    def test_r008_flags_silent_broad_handlers(self, tmp_path):
        root = _mini_project(tmp_path, {"net/server.py": """\
            def serve(conn):
                try:
                    conn.step()
                except Exception:
                    pass

            def pump(conn):
                try:
                    conn.drain()
                except:
                    return None

            def multi(conn):
                try:
                    conn.go()
                except (ValueError, Exception):
                    conn.reset()
        """})
        findings = _lint(root, only={"R008"})
        assert all(f.rule == "R008" for f in findings)
        assert {f.line for f in findings} == {4, 10, 16}
        assert any("bare except:" in f.message for f in findings)
        assert all("re-raises" in f.message for f in findings)

    def test_r008_passes_reraise_and_recording(self, tmp_path):
        root = _mini_project(tmp_path, {"engine/pool.py": """\
            import traceback

            class Pool:
                def narrow(self):
                    try:
                        self.step()
                    except OSError:
                        pass               # narrow catch: deliberate

                def reraises(self):
                    try:
                        self.step()
                    except Exception:
                        self.teardown()
                        raise

                def records_attr(self):
                    try:
                        self.step()
                    except Exception as exc:
                        self._fatal = str(exc)

                def counts_stat(self):
                    try:
                        self.step()
                    except Exception:
                        self.stats.errors += 1

                def reports(self):
                    try:
                        self.step()
                    except Exception:
                        traceback.format_exc()

                def __del__(self):
                    try:
                        self.close()
                    except Exception:
                        pass               # finalizer: exempt
        """})
        assert _lint(root, only={"R008"}) == []

    def test_r008_ignores_files_outside_exception_paths(self, tmp_path):
        root = _mini_project(tmp_path, {"core/quiet.py": """\
            def swallow(fn):
                try:
                    fn()
                except Exception:
                    pass
        """})
        assert _lint(root, only={"R008"}) == []

    def test_r008_suppression_works_and_stale_ones_surface(self, tmp_path):
        root = _mini_project(tmp_path, {"service/teardown.py": """\
            def close(thing):
                try:
                    thing.close()
                except Exception:  # repro-lint: disable=R008 -- idempotent teardown
                    pass
        """})
        assert _lint(root, only={"R008"}) == []
        root2 = _mini_project(tmp_path / "two", {"service/clean.py": """\
            def close(thing):  # repro-lint: disable=R008 -- nothing here
                thing.close()
        """})
        findings = _lint(root2, only={"R008"})
        assert [f.rule for f in findings] == ["R000"]

    def test_r005_missing_baseline_and_roundtrip(self, tmp_path):
        root = _mini_project(tmp_path, {
            "sketch/leaf.py": """\
                import numpy as np

                class Leaf:
                    def _params(self):
                        return dict(universe=self.universe, seed=self.seed)

                    def _state_arrays(self):
                        return [self.table]
            """,
            "engine/registry.py": "",
            "engine/checkpoint.py": "FORMAT_VERSION = 1\n",
        }, ini_extra="baseline = baseline.json")
        findings = _lint(root, only={"R005"})
        assert [f.rule for f in findings] == ["R005"]
        assert "baseline missing" in findings[0].message
        # refresh, then the same tree is clean
        write_baseline(LintContext(root, LintConfig.load(root)),
                       allow_dirty=True)
        assert _lint(root, only={"R005"}) == []
        # reshape the payload without a bump: flagged at the class
        leaf = root / "pkg" / "sketch" / "leaf.py"
        leaf.write_text(leaf.read_text().replace("seed=self.seed",
                                                 "salt=self.salt"))
        findings = _lint(root, only={"R005"})
        assert len(findings) == 1
        assert findings[0].rule == "R005"
        assert "without a FORMAT_VERSION bump" in findings[0].message
        # bump the version: now the *baseline* is stale, one finding
        (root / "pkg" / "engine" / "checkpoint.py").write_text(
            "FORMAT_VERSION = 2\n")
        findings = _lint(root, only={"R005"})
        assert len(findings) == 1
        assert "baseline records" in findings[0].message


class TestSuppressions:
    def test_inline_suppression_silences_and_is_counted_used(self, tmp_path):
        root = _mini_project(tmp_path, {"core/state.py": """\
            import time

            def t():
                return time.perf_counter()  # repro-lint: disable=R001 -- metrics only
        """})
        assert _lint(root, only={"R001"}) == []

    def test_standalone_suppression_covers_next_line(self, tmp_path):
        root = _mini_project(tmp_path, {"core/state.py": """\
            import time

            def t():
                # repro-lint: disable=R001 -- metrics only
                return time.perf_counter()
        """})
        assert _lint(root, only={"R001"}) == []

    def test_unused_suppression_is_reported_as_r000(self, tmp_path):
        root = _mini_project(tmp_path, {"core/state.py": """\
            def clean():
                return 7  # repro-lint: disable=R001 -- stale excuse
        """})
        findings = _lint(root, only={"R001"})
        assert [f.rule for f in findings] == ["R000"]
        assert "unused suppression" in findings[0].message

    def test_file_wide_suppression(self, tmp_path):
        root = _mini_project(tmp_path, {"core/state.py": """\
            # repro-lint: disable-file=R001 -- legacy module, tracked
            import time

            def a():
                return time.perf_counter()

            def b():
                return time.monotonic()
        """})
        assert _lint(root, only={"R001"}) == []


class TestReporting:
    def test_json_document_shape(self, tmp_path, capsys):
        root = _mini_project(tmp_path, {"core/state.py": """\
            import time

            def t():
                return time.perf_counter()
        """})
        code = cli_main(["lint", "--root", str(root), "--rules", "R001",
                         "--format", "json"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro-lint"
        assert doc["schema"] == analysis.JSON_SCHEMA
        assert doc["clean"] is False
        assert doc["counts"] == {"R001": 1}
        (finding,) = doc["findings"]
        assert set(finding) == {"rule", "path", "line", "message"}
        assert finding["rule"] == "R001"
        assert finding["path"].endswith("core/state.py")
        assert finding["line"] == 4
        assert set(doc["rules"]) == {f"R00{i}" for i in range(1, 9)}

    def test_text_output_and_exit_codes(self, tmp_path, capsys):
        root = _mini_project(tmp_path, {"core/ok.py": "X = 1\n"})
        assert cli_main(["lint", "--root", str(root),
                         "--rules", "R001"]) == 0
        assert "repro lint: clean" in capsys.readouterr().out
        assert cli_main(["lint", "--root", str(root),
                         "--rules", "R42X"]) == 2
        assert "unknown rule ids" in capsys.readouterr().err

    def test_missing_package_is_a_usage_error(self, tmp_path):
        with pytest.raises(LintError):
            run_lint(tmp_path)
        assert cli_main(["lint", "--root", str(tmp_path)]) == 2


# ---------------------------------------------------------------------------
# kill tests: the real tree, with each guarded bug reintroduced


def _copy_repo(tmp_path: Path) -> Path:
    """The live src/ tree + kernel suite, inspection pass disabled."""
    root = tmp_path / "repo"
    root.mkdir()
    shutil.copytree(REPO_ROOT / "src", root / "src")
    (root / "tests").mkdir()
    shutil.copy(REPO_ROOT / "tests" / "test_kernels.py",
                root / "tests" / "test_kernels.py")
    ini = (REPO_ROOT / "pytest.ini").read_text()
    (root / "pytest.ini").write_text(
        ini.replace("inspect = true", "inspect = false"))
    return root


def _single_finding(root: Path, rule: str):
    findings = [f for f in run_lint(root, config=LintConfig.load(root))
                if f.rule == rule]
    assert len(findings) == 1, findings
    return findings[0]


class TestKillMutations:
    def test_copied_tree_is_clean(self, tmp_path):
        root = _copy_repo(tmp_path)
        assert run_lint(root, config=LintConfig.load(root)) == []

    def test_deleting_an_oracle_trips_r003(self, tmp_path, capsys):
        root = _copy_repo(tmp_path)
        target = root / "src" / "repro" / "sketch" / "count_min.py"
        target.write_text(target.read_text().replace(
            "def _reference_update_many", "def _renamed_away"))
        finding = _single_finding(root, "R003")
        assert finding.path == "src/repro/sketch/count_min.py"
        assert "CountMin.update_many" in finding.message
        # the line is the real def update_many line in the mutated file
        tree = ast.parse(target.read_text())
        cls = next(n for n in ast.walk(tree)
                   if isinstance(n, ast.ClassDef) and n.name == "CountMin")
        def_line = next(n.lineno for n in cls.body
                        if isinstance(n, ast.FunctionDef)
                        and n.name == "update_many")
        assert finding.line == def_line
        assert cli_main(["lint", "--root", str(root)]) == 1
        assert "R003" in capsys.readouterr().out

    def test_unseeded_rng_in_core_trips_r001(self, tmp_path, capsys):
        root = _copy_repo(tmp_path)
        evil = root / "src" / "repro" / "core" / "zz_evil.py"
        evil.write_text("import numpy as np\n"
                        "_RNG = np.random.default_rng()\n")
        finding = _single_finding(root, "R001")
        assert finding.path == "src/repro/core/zz_evil.py"
        assert finding.line == 2
        assert "unseeded" in finding.message
        assert cli_main(["lint", "--root", str(root)]) == 1
        assert "zz_evil.py:2: R001" in capsys.readouterr().out

    def test_payload_reshape_without_bump_trips_r005(self, tmp_path,
                                                     capsys):
        root = _copy_repo(tmp_path)
        target = root / "src" / "repro" / "sketch" / "count_min.py"
        target.write_text(target.read_text().replace(
            "return dict(universe=self.universe, buckets=self.buckets",
            "return dict(universe=self.universe, width=self.buckets"))
        finding = _single_finding(root, "R005")
        assert finding.path == "src/repro/sketch/count_min.py"
        assert "CountMin" in finding.message
        assert "FORMAT_VERSION" in finding.message
        tree = ast.parse(target.read_text())
        cls_line = next(n.lineno for n in ast.walk(tree)
                        if isinstance(n, ast.ClassDef)
                        and n.name == "CountMin")
        assert finding.line == cls_line
        assert cli_main(["lint", "--root", str(root)]) == 1
        assert "R005" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# baseline refresh discipline


@pytest.mark.skipif(shutil.which("git") is None, reason="needs git")
class TestBaselineRefresh:
    def _git(self, root, *args):
        return subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             *args], cwd=root, capture_output=True, text=True, check=True)

    def test_refuses_dirty_tree_then_writes_clean(self, tmp_path):
        root = _copy_repo(tmp_path)
        self._git(root, "init", "-q")
        self._git(root, "add", "-A")
        self._git(root, "commit", "-qm", "seed")
        (root / "scratch.txt").write_text("wip\n")
        ctx = LintContext(root, LintConfig.load(root))
        with pytest.raises(RuntimeError, match="dirty"):
            write_baseline(ctx)
        # same call succeeds once the tree is clean again
        (root / "scratch.txt").unlink()
        path = write_baseline(ctx)
        written = json.loads(path.read_text())
        assert written["format_version"] == 3
        assert written["wire_version"] == 1
        assert "WireFormat" in written["entries"]

    def test_allow_dirty_overrides(self, tmp_path):
        root = _copy_repo(tmp_path)
        self._git(root, "init", "-q")
        self._git(root, "add", "-A")
        self._git(root, "commit", "-qm", "seed")
        (root / "scratch.txt").write_text("wip\n")
        ctx = LintContext(root, LintConfig.load(root))
        assert write_baseline(ctx, allow_dirty=True).is_file()

    def test_cli_baseline_dirty_is_exit_2(self, tmp_path, capsys):
        root = _copy_repo(tmp_path)
        self._git(root, "init", "-q")
        self._git(root, "add", "-A")
        self._git(root, "commit", "-qm", "seed")
        (root / "scratch.txt").write_text("wip\n")
        assert cli_main(["lint", "--root", str(root), "--baseline"]) == 2
        assert "dirty" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# the live tree


class TestLiveTree:
    def test_repo_is_lint_clean(self):
        """The shipped tree must pass its own gate (inspection pass
        included) — this is the test CI's lint lane duplicates."""
        findings = run_lint(REPO_ROOT)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_registry_audit_is_problem_free(self):
        from repro.engine import registry
        report = registry.audit()
        assert report["problems"] == []
        for name, row in report["types"].items():
            assert row["problems"] == [], (name, row["problems"])
        # every registered type serves at least one query op
        assert all(row["queries"] for row in report["types"].values())

    def test_unsupported_query_for_unregistered_type(self):
        from repro.engine import UnsupportedQuery, query_capability

        class NotRegistered:
            pass

        with pytest.raises(UnsupportedQuery) as err:
            query_capability(NotRegistered, "point")
        assert err.value.type_name == "NotRegistered"
        assert err.value.op == "point"
        assert err.value.registered is False
        assert err.value.supported == ()
