"""Tests for the cascaded-norm application (apps/cascaded.py)."""

import numpy as np
import pytest

from repro.apps.cascaded import (CascadedNormEstimator, MatrixStream,
                                 exact_cascaded_norm)


def random_matrix(rows, cols, seed, heavy_rows=0):
    rng = np.random.default_rng(seed)
    mat = rng.integers(0, 5, size=(rows, cols)).astype(np.int64)
    for r in range(heavy_rows):
        mat[r] = rng.integers(30, 60, size=cols)
    return mat


def run_two_passes(estimator, matrix, seed=0):
    rng = np.random.default_rng(seed)
    i_idx, j_idx = np.nonzero(matrix)
    order = rng.permutation(i_idx.size)
    for _ in range(2 if estimator.current_pass == 1 else 1):
        estimator.update_many(i_idx[order], j_idx[order],
                              matrix[i_idx, j_idx][order])
        if estimator.current_pass == 1:
            estimator.finish_first_pass()
    return estimator


class TestMatrixStream:
    def test_flatten_roundtrip(self):
        ms = MatrixStream(5, 7)
        flat = ms.flatten(np.array([0, 2, 4]), np.array([0, 3, 6]))
        assert flat.tolist() == [0, 17, 34]
        assert [ms.row_of(f) for f in flat] == [0, 2, 4]

    def test_out_of_range(self):
        ms = MatrixStream(3, 3)
        with pytest.raises(ValueError):
            ms.flatten(3, 0)
        with pytest.raises(ValueError):
            ms.flatten(0, -1)


class TestExactNorm:
    def test_k1_is_total_mass(self):
        mat = np.array([[1, 2], [3, 4]])
        assert exact_cascaded_norm(mat, 1.0, 1.0) == 10.0

    def test_k2_squares_rows(self):
        mat = np.array([[1, 2], [3, 4]])
        assert exact_cascaded_norm(mat, 1.0, 2.0) == 9 + 49


class TestEstimator:
    def test_pass_discipline(self):
        est = CascadedNormEstimator(4, 4, p=1.0, k=2.0, samples=2, seed=1)
        with pytest.raises(RuntimeError):
            est.estimate()
        est.finish_first_pass()
        with pytest.raises(RuntimeError):
            est.finish_first_pass()

    def test_rejects_k_below_one(self):
        with pytest.raises(ValueError):
            CascadedNormEstimator(4, 4, p=1.0, k=0.5)

    def test_k1_recovers_total_mass(self):
        """k = 1 collapses to estimating W itself, a sharp sanity check."""
        mat = random_matrix(20, 20, seed=2)
        est = CascadedNormEstimator(20, 20, p=1.0, k=1.0, samples=6,
                                    seed=2)
        run_two_passes(est, mat, seed=2)
        value = est.estimate()
        truth = exact_cascaded_norm(mat, 1.0, 1.0)
        assert value is not None
        assert value == pytest.approx(truth, rel=0.5)

    def test_k2_order_of_magnitude_with_heavy_row(self):
        mat = random_matrix(24, 24, seed=3, heavy_rows=2)
        est = CascadedNormEstimator(24, 24, p=1.0, k=2.0, samples=16,
                                    seed=3)
        run_two_passes(est, mat, seed=3)
        value = est.estimate()
        truth = exact_cascaded_norm(mat, 1.0, 2.0)
        assert value is not None
        assert truth / 20 <= value <= truth * 20

    def test_sampled_rows_biased_to_heavy(self):
        """The Lp sampler must concentrate its row picks on heavy rows."""
        mat = random_matrix(30, 30, seed=4, heavy_rows=1)
        est = CascadedNormEstimator(30, 30, p=1.0, k=2.0, samples=20,
                                    seed=4)
        rng = np.random.default_rng(4)
        i_idx, j_idx = np.nonzero(mat)
        order = rng.permutation(i_idx.size)
        est.update_many(i_idx[order], j_idx[order],
                        mat[i_idx, j_idx][order])
        sampled = est.finish_first_pass()
        # row 0 carries ~25% of the L1 mass here; it must show up
        assert 0 in sampled

    def test_space_grows_polylogarithmically(self):
        """Exact row-mass storage doubles per matrix-dimension doubling;
        the estimator's space must grow only polylogarithmically — a
        64x larger matrix costs well under 4x the bits."""
        small = CascadedNormEstimator(1 << 8, 1 << 8, p=1.0, k=2.0,
                                      samples=4, seed=5)
        large = CascadedNormEstimator(1 << 14, 1 << 14, p=1.0, k=2.0,
                                      samples=4, seed=5)
        ratio = large.space_bits() / small.space_bits()
        assert ratio < 4.0          # vs 64x for exact storage
