"""Tests for the LinearSketch base machinery (sketch/linear.py)."""

import numpy as np
import pytest

from repro.sketch import AMSSketch, CountSketch
from repro.sketch.linear import LinearSketch


class TestSketchVector:
    def test_dense_form(self):
        cs = CountSketch(50, m=4, rows=5, seed=1)
        vec = np.zeros(50)
        vec[3] = 7
        cs.sketch_vector(vector=vec)
        assert cs.estimate(3) == pytest.approx(7.0)

    def test_sparse_form(self):
        cs = CountSketch(50, m=4, rows=5, seed=1)
        cs.sketch_vector(indices=np.array([3]), values=np.array([7.0]))
        assert cs.estimate(3) == pytest.approx(7.0)

    def test_both_forms_agree(self):
        a = CountSketch(50, m=4, rows=5, seed=2)
        b = CountSketch(50, m=4, rows=5, seed=2)
        vec = np.zeros(50)
        vec[[1, 8, 40]] = [2, -5, 9]
        a.sketch_vector(vector=vec)
        b.sketch_vector(indices=np.array([1, 8, 40]),
                        values=np.array([2.0, -5.0, 9.0]))
        assert np.allclose(a.table, b.table)

    def test_requires_an_argument(self):
        cs = CountSketch(50, m=4, rows=5, seed=1)
        with pytest.raises(ValueError):
            cs.sketch_vector()

    def test_empty_vector_is_noop(self):
        cs = CountSketch(50, m=4, rows=5, seed=1)
        cs.sketch_vector(vector=np.zeros(50))
        assert not cs.table.any()


class TestCrossTypeSafety:
    def test_merge_different_types_rejected(self):
        cs = CountSketch(50, m=4, rows=5, seed=1)
        ams = AMSSketch(50, groups=4, per_group=5, seed=1)
        with pytest.raises(ValueError):
            cs.merge(ams)

    def test_merge_different_universe_rejected(self):
        a = CountSketch(50, m=4, rows=5, seed=1)
        b = CountSketch(51, m=4, rows=5, seed=1)
        with pytest.raises(ValueError):
            a.merge(b)


class TestAbstractContract:
    def test_base_update_many_is_abstract(self):
        sketch = LinearSketch()
        with pytest.raises(NotImplementedError):
            sketch.update_many([1], [1])

    def test_single_update_delegates(self):
        calls = []

        class Probe(LinearSketch):
            universe = 10
            seed = 0

            def update_many(self, indices, deltas):
                calls.append((list(np.asarray(indices)),
                              list(np.asarray(deltas))))

        Probe().update(4, -2)
        assert calls == [([4], [-2])]
