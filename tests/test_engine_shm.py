"""The shared-memory chunk transport: shm == pickle == serial.

The transport moves bytes, nothing else: for every shardable
registered type a ``transport="shm"`` pipeline must produce state
byte-identical to the pickle transport and the serial backend, its
checkpoints must interoperate with every backend/transport
combination, and the PR-2 failure contract (crash surfaces, never a
hang; poisoned pipelines refuse to checkpoint) must hold unchanged.
Plus unit tests for the :class:`~repro.engine.shm.SlotRing` itself.

Everything spawning worker processes here runs in the CI worker lane
under a hard timeout.
"""

import time

import numpy as np
import pytest

from repro.engine import ShardedPipeline, SlotRing, WorkerCrashed
from repro.engine.checkpoint import checkpoint as snapshot_blob
from repro.engine.workers import ProcessPool
from repro.sketch import CountMin, CountSketch

from _engine_cases import (SHARDABLE, SHARDABLE_IDS, EngineCase,
                           random_turnstile, states_equal)


def _pipeline(case: EngineCase, backend: str, transport=None, universe=128,
              shards=3, chunk=32, seed=5) -> ShardedPipeline:
    return ShardedPipeline(lambda: case.factory(universe, seed),
                           shards=shards, chunk_size=chunk,
                           backend=backend, transport=transport)


class TestSlotRing:
    def test_roundtrip_is_exact(self):
        ring = SlotRing(slots=3, slot_updates=64)
        try:
            rng = np.random.default_rng(0)
            for slot, count in ((0, 64), (1, 1), (2, 17)):
                indices = rng.integers(0, 1 << 30, size=count,
                                       dtype=np.int64)
                deltas = rng.integers(-9, 9, size=count, dtype=np.int64)
                descriptor = ring.write(slot, indices, deltas)
                got_idx, got_dlt = ring.read(descriptor)
                assert np.array_equal(got_idx, indices)
                assert np.array_equal(got_dlt, deltas)
        finally:
            ring.close()

    def test_float_deltas_roundtrip(self):
        ring = SlotRing(slots=1, slot_updates=16)
        try:
            indices = np.arange(10, dtype=np.int64)
            deltas = np.linspace(-1.5, 2.5, 10)
            got_idx, got_dlt = ring.read(ring.write(0, indices, deltas))
            assert got_dlt.dtype == np.float64
            assert np.array_equal(got_dlt, deltas)
            assert np.array_equal(got_idx, indices)
        finally:
            ring.close()

    def test_fits_and_validation(self):
        ring = SlotRing(slots=2, slot_updates=8)
        try:
            small = np.zeros(8, dtype=np.int64)
            big = np.zeros(9, dtype=np.int64)
            assert ring.fits(small, small)
            assert not ring.fits(big, big)
        finally:
            ring.close()
        with pytest.raises(ValueError):
            SlotRing(slots=0, slot_updates=8)
        with pytest.raises(ValueError):
            SlotRing(slots=1, slot_updates=0)

    def test_close_is_idempotent(self):
        ring = SlotRing(slots=1, slot_updates=4)
        ring.close()
        ring.close()


class TestTransportValidation:
    FACTORY = staticmethod(lambda: CountMin(64, buckets=8, rows=2, seed=1))

    def test_serial_backend_rejects_transport(self):
        with pytest.raises(ValueError, match="requires backend"):
            ShardedPipeline(self.FACTORY, shards=2, transport="shm")

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport must be"):
            ShardedPipeline(self.FACTORY, shards=2, backend="process",
                            transport="carrier-pigeon")
        with pytest.raises(ValueError):
            ProcessPool([snapshot_blob(self.FACTORY())],
                        transport="bogus")

    def test_restore_validates_transport(self):
        with ShardedPipeline(self.FACTORY, shards=2) as pipeline:
            pipeline.ingest([1, 2], [1, 1])
            blob = pipeline.checkpoint()
        with pytest.raises(ValueError, match="requires backend"):
            ShardedPipeline.restore(blob, transport="shm")

    def test_default_transport_is_pickle(self):
        with ShardedPipeline(self.FACTORY, shards=2,
                             backend="process") as pipeline:
            assert pipeline.transport == "pickle"
        # Serial has no chunk transport at all — and says so.
        serial = ShardedPipeline(self.FACTORY, shards=2)
        assert serial.transport is None


@pytest.mark.parametrize("case", SHARDABLE, ids=SHARDABLE_IDS)
class TestShmMatchesPickle:
    def test_merged_state_identical_across_transports(self, case):
        """shm == pickle == serial, byte-identical, for every
        shardable registered type."""
        universe, chunk = 128, 32
        indices, deltas = random_turnstile(universe, 4 * chunk, 21)

        serial = _pipeline(case, "serial")
        serial.ingest(indices, deltas)
        merged_serial = serial.merged()

        merged = {}
        for transport in ("pickle", "shm"):
            with _pipeline(case, "process", transport) as pipeline:
                assert pipeline.transport == transport
                pipeline.ingest(indices, deltas)
                merged[transport] = pipeline.merged()

        assert states_equal(merged["shm"], merged["pickle"], exact=True)
        assert states_equal(merged_serial, merged["shm"], exact=True)

    def test_checkpoint_interoperates_across_transports(self, case):
        """A blob written under shm resumes under pickle/serial (and
        back) and finishes byte-identical to the uninterrupted run."""
        universe, chunk = 128, 32
        indices, deltas = random_turnstile(universe, 4 * chunk, 23)
        split = 2 * chunk

        plain = _pipeline(case, "serial", seed=9)
        plain.ingest(indices, deltas)

        with _pipeline(case, "process", "shm", seed=9) as first:
            first.ingest(indices[:split], deltas[:split])
            blob = first.checkpoint()
        with ShardedPipeline.restore(blob, backend="process",
                                     transport="pickle") as resumed:
            resumed.ingest(indices[split:], deltas[split:])
            assert states_equal(plain.merged(), resumed.merged(),
                                exact=True)
        with ShardedPipeline.restore(blob, backend="process",
                                     transport="shm") as again:
            assert again.transport == "shm"
            again.ingest(indices[split:], deltas[split:])
            assert states_equal(plain.merged(), again.merged(),
                                exact=True)


class TestShmLifecycle:
    FACTORY = staticmethod(lambda: CountSketch(256, m=4, rows=3, seed=2))

    def test_reshard_preserves_transport(self):
        indices, deltas = random_turnstile(256, 600, 31)
        single = self.FACTORY()
        single.update_many(indices, deltas)
        with ShardedPipeline(self.FACTORY, shards=2, chunk_size=64,
                             backend="process",
                             transport="shm") as pipeline:
            pipeline.ingest(indices[:300], deltas[:300])
            pipeline.reshard(4)
            assert pipeline.transport == "shm"
            assert pipeline._pool.transport == "shm"
            pipeline.ingest(indices[300:], deltas[300:])
            assert states_equal(single, pipeline.merged(), exact=True)

    def test_oversized_chunk_falls_back_to_pickle(self):
        """A chunk larger than a slot (only reachable through direct
        pool use) must still arrive — via the pickle path."""
        pool = ProcessPool([snapshot_blob(self.FACTORY())],
                           transport="shm", slot_updates=8)
        try:
            indices, deltas = random_turnstile(256, 100, 37)
            pool.submit(0, indices, deltas)          # 100 > 8: fallback
            pool.submit(0, indices[:5], deltas[:5])  # shm path
            pool.flush()
            twin = self.FACTORY()
            twin.update_many(indices, deltas)
            twin.update_many(indices[:5], deltas[:5])
            assert states_equal(twin, pool.structures()[0], exact=True)
        finally:
            pool.close()

    def test_scalar_delta_submit_falls_back_to_pickle(self):
        """A broadcast (scalar) delta cannot ride a slot — the
        descriptor carries one count for both arrays — so it must take
        the pickle path and still broadcast correctly."""
        pool = ProcessPool([snapshot_blob(self.FACTORY())],
                           transport="shm", slot_updates=64)
        try:
            indices = np.arange(8, dtype=np.int64)
            pool.submit(0, indices, np.int64(2))     # scalar delta
            pool.flush()
            twin = self.FACTORY()
            twin.update_many(indices, np.int64(2))
            assert states_equal(twin, pool.structures()[0], exact=True)
        finally:
            pool.close()
        ring = SlotRing(slots=1, slot_updates=64)
        try:
            with pytest.raises(ValueError, match="equal length"):
                ring.write(0, np.arange(8, dtype=np.int64),
                           np.zeros(4, dtype=np.int64))
        finally:
            ring.close()

    def test_worker_crash_surfaces_not_hangs(self):
        """A dead consumer must raise WorkerCrashed from the slot
        acquire loop (permits it will never release), not deadlock."""
        indices, deltas = random_turnstile(256, 2000, 41)
        pipeline = ShardedPipeline(self.FACTORY, shards=2, chunk_size=64,
                                   backend="process", transport="shm")
        try:
            pipeline.ingest(indices, deltas)
            pipeline.flush()
            pipeline._pool._workers[0].process.terminate()
            time.sleep(0.2)
            with pytest.raises(WorkerCrashed):
                for _ in range(64):      # enough to exhaust the slots
                    pipeline.ingest(indices, deltas)
                    pipeline.flush()
            with pytest.raises((WorkerCrashed, RuntimeError)):
                pipeline.checkpoint()
        finally:
            pipeline.close()

    def test_engine_cli_drives_shm_transport(self, capsys):
        from repro.cli import main
        assert main(["engine", "--structure", "count-sketch", "-n", "512",
                     "--updates", "4000", "--shards", "2",
                     "--chunk", "512", "--backend", "process",
                     "--transport", "shm"]) == 0
        out = capsys.readouterr().out
        assert "transport=shm" in out
        assert "ingested 4000 updates" in out

    def test_close_unlinks_segments(self):
        pipeline = ShardedPipeline(self.FACTORY, shards=2, chunk_size=64,
                                   backend="process", transport="shm")
        rings = [worker.ring for worker in pipeline._pool._workers]
        assert all(ring is not None for ring in rings)
        pipeline.ingest([1, 2, 3], [1, 1, 1])
        pipeline.close()
        import multiprocessing.shared_memory as mp_shm
        for ring in rings:
            with pytest.raises(FileNotFoundError):
                mp_shm.SharedMemory(name=ring.name)
