"""Tests for RepeatedSampler, PerfectLpSampler and ReservoirSampler."""

import numpy as np
import pytest

from repro.core import (PerfectLpSampler, RepeatedSampler, ReservoirSampler,
                        SampleResult, lp_distribution, total_variation)
from repro.core.base import StreamingSampler
from repro.streams import vector_to_stream, zipf_vector


class _AlwaysFails(StreamingSampler):
    def __init__(self, seed):
        self.universe = 10
        self.calls = 0

    def update(self, index, delta):
        self.calls += 1

    def update_many(self, indices, deltas):
        self.calls += len(np.asarray(indices))

    def sample(self):
        return SampleResult.fail("nope")

    def space_bits(self):
        return 7

    def space_report(self):
        from repro.space.accounting import SpaceReport
        return SpaceReport(label="stub", seed_bits=7)


class _SucceedsWithIndex(StreamingSampler):
    def __init__(self, index):
        self.universe = 10
        self.index = index

    def update(self, index, delta):
        pass

    def update_many(self, indices, deltas):
        pass

    def sample(self):
        return SampleResult.ok(self.index)

    def space_report(self):
        from repro.space.accounting import SpaceReport
        return SpaceReport(label="stub", seed_bits=1)


class TestRepeatedSampler:
    def test_requires_positive_rounds(self):
        with pytest.raises(ValueError):
            RepeatedSampler(lambda s: _AlwaysFails(s), rounds=0)

    def test_fans_out_updates(self):
        rep = RepeatedSampler(lambda s: _AlwaysFails(s), rounds=5)
        rep.update(1, 2)
        assert all(inst.calls == 1 for inst in rep.instances)

    def test_all_fail_propagates(self):
        rep = RepeatedSampler(lambda s: _AlwaysFails(s), rounds=3)
        result = rep.sample()
        assert result.failed
        assert "nope" in result.reason

    def test_first_success_wins(self):
        counter = iter(range(100))

        def factory(seed):
            i = next(counter)
            return _AlwaysFails(seed) if i < 2 else _SucceedsWithIndex(i)

        rep = RepeatedSampler(factory, rounds=5)
        result = rep.sample()
        assert not result.failed
        assert result.index == 2
        assert result.diagnostics["round"] == 2

    def test_distinct_seeds_per_round(self):
        seen = []
        rep = RepeatedSampler(lambda s: (seen.append(s),
                                         _AlwaysFails(s))[1], rounds=6)
        assert len(set(seen)) == 6

    def test_space_sums_rounds(self):
        rep = RepeatedSampler(lambda s: _AlwaysFails(s), rounds=4)
        assert rep.space_bits() == 4 * 7


class TestPerfectSampler:
    def test_zero_vector_fails(self):
        sampler = PerfectLpSampler(100, 1.0, seed=1)
        assert sampler.sample().failed

    def test_distribution_matches_definition(self):
        vec = np.array([0, 1, 3, 0, -4], dtype=np.int64)
        sampler = PerfectLpSampler(5, 1.0, seed=2)
        sampler.update_many(np.flatnonzero(vec), vec[np.flatnonzero(vec)])
        dist = sampler.distribution()
        assert np.allclose(dist, [0, 1 / 8, 3 / 8, 0, 4 / 8])

    def test_l0_distribution_uniform_on_support(self):
        vec = np.array([0, 5, -1, 0, 100], dtype=np.int64)
        assert np.allclose(lp_distribution(vec, 0.0),
                           [0, 1 / 3, 1 / 3, 0, 1 / 3])

    def test_empirical_matches_exact(self):
        n = 50
        vec = zipf_vector(n, scale=100, seed=3)
        sampler = PerfectLpSampler(n, 1.0, seed=4)
        vector_to_stream(vec, seed=5).apply_to(sampler)
        counts = np.zeros(n)
        for _ in range(4000):
            result = sampler.sample()
            counts[result.index] += 1
        tv = total_variation(counts / 4000, lp_distribution(vec, 1.0))
        assert tv < 0.08

    def test_p2_weights(self):
        vec = np.array([1, 2], dtype=np.int64)
        assert np.allclose(lp_distribution(vec, 2.0), [0.2, 0.8])


class TestTotalVariation:
    def test_identical_is_zero(self):
        d = np.array([0.5, 0.5])
        assert total_variation(d, d) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation([1, 0], [0, 1]) == 1.0

    def test_symmetry(self):
        a = np.array([0.7, 0.2, 0.1])
        b = np.array([0.1, 0.3, 0.6])
        assert total_variation(a, b) == total_variation(b, a)


class TestReservoir:
    def test_empty_stream_fails(self):
        sampler = ReservoirSampler(10, seed=1)
        assert sampler.sample().failed

    def test_single_item(self):
        sampler = ReservoirSampler(10, seed=2)
        sampler.update(7, 5)
        result = sampler.sample()
        assert result.index == 7

    def test_perfect_l1_on_insertions(self):
        """The introduction's claim: exact L1 sampling in O(1) words."""
        weights = {0: 10, 1: 30, 2: 60}
        counts = np.zeros(3)
        for seed in range(2000):
            sampler = ReservoirSampler(3, seed=seed)
            for i, w in weights.items():
                sampler.update(i, w)
            counts[sampler.sample().index] += 1
        emp = counts / counts.sum()
        assert np.allclose(emp, [0.1, 0.3, 0.6], atol=0.05)

    def test_deletions_flagged(self):
        """The motivating failure: reservoirs cannot handle deletions."""
        sampler = ReservoirSampler(10, seed=3)
        sampler.update(1, 5)
        sampler.update(1, -5)
        assert not sampler.insertion_only
        result = sampler.sample()
        assert result.diagnostics["insertion_only"] is False

    def test_space_is_constant(self):
        small = ReservoirSampler(10)
        large = ReservoirSampler(10**6)
        assert small.space_report().counter_count \
            == large.space_report().counter_count
