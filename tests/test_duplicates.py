"""Tests for the Section 3 duplicate finders (apps/duplicates.py)."""

import numpy as np
import pytest

from repro.apps.duplicates import (NO_DUPLICATE, DuplicateFinder,
                                   LongStreamDuplicateFinder,
                                   ShortStreamDuplicateFinder,
                                   _repetitions_for)
from repro.streams import (duplicate_stream, long_stream,
                           planted_duplicate_stream, short_stream)


class TestRepetitionCount:
    def test_monotone(self):
        assert _repetitions_for(0.01) > _repetitions_for(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            _repetitions_for(0.0)
        with pytest.raises(ValueError):
            _repetitions_for(1.0)


class TestTheorem3:
    def test_random_streams_find_true_duplicates(self):
        n, ok, wrong = 128, 0, 0
        for seed in range(8):
            inst = duplicate_stream(n, seed=seed)
            finder = DuplicateFinder(n, delta=0.2, seed=seed,
                                     sampler_rounds=6)
            finder.process_items(inst.items)
            result = finder.result()
            if result.failed:
                continue
            ok += 1
            if result.index not in set(inst.duplicates.tolist()):
                wrong += 1
        assert ok >= 6       # failure rate well under delta on average
        assert wrong == 0    # wrong outputs are low-probability events

    def test_single_planted_duplicate(self):
        """Worst case: one duplicated letter hiding among n singletons."""
        n, found = 128, 0
        for seed in range(6):
            inst = planted_duplicate_stream(n, seed=seed)
            finder = DuplicateFinder(n, delta=0.2, seed=seed + 50,
                                     sampler_rounds=6)
            finder.process_items(inst.items)
            result = finder.result()
            if not result.failed:
                assert result.index == int(inst.duplicates[0])
                found += 1
        assert found >= 4

    def test_item_by_item_matches_bulk(self):
        n = 64
        inst = duplicate_stream(n, seed=3)
        a = DuplicateFinder(n, delta=0.3, seed=9, sampler_rounds=4)
        b = DuplicateFinder(n, delta=0.3, seed=9, sampler_rounds=4)
        a.process_items(inst.items)
        for item in inst.items:
            b.process_item(int(item))
        ra, rb = a.result(), b.result()
        assert ra.failed == rb.failed
        if not ra.failed:
            assert ra.index == rb.index

    def test_space_is_log_squared(self):
        small = DuplicateFinder(1 << 7, delta=0.3, seed=1, sampler_rounds=2)
        large = DuplicateFinder(1 << 14, delta=0.3, seed=1, sampler_rounds=2)
        ratio = large.space_report().counter_total \
            / small.space_report().counter_total
        assert 2.0 < ratio < 8.0


class TestTheorem4:
    def test_no_duplicate_certified(self):
        """Probability-1 NO-DUPLICATE on duplicate-free streams."""
        n = 128
        for seed in range(5):
            inst = short_stream(n, missing=6, with_duplicate=False,
                                seed=seed)
            finder = ShortStreamDuplicateFinder(n, s=6, delta=0.3,
                                                seed=seed, sampler_rounds=4)
            finder.process_items(inst.items)
            assert finder.result() == NO_DUPLICATE

    def test_duplicate_found_exactly_when_sparse(self):
        """With few missing letters, x is 5s-sparse: the exact path."""
        n = 128
        for seed in range(5):
            inst = short_stream(n, missing=4, with_duplicate=True,
                                seed=seed)
            finder = ShortStreamDuplicateFinder(n, s=4, delta=0.3,
                                                seed=seed, sampler_rounds=4)
            finder.process_items(inst.items)
            result = finder.result()
            assert result != NO_DUPLICATE
            assert not result.failed
            assert result.index == int(inst.duplicates[0])
            assert result.diagnostics.get("exact") is True

    def test_s_zero_is_pigeonhole_regime(self):
        n = 64
        inst = duplicate_stream(n, length=n, seed=7)
        # a random length-n stream usually has duplicates; if x is
        # 5*1-sparse the finder answers exactly, otherwise samples.
        finder = ShortStreamDuplicateFinder(n, s=0, delta=0.3, seed=7,
                                            sampler_rounds=4)
        finder.process_items(inst.items)
        result = finder.result()
        if inst.duplicates.size == 0:
            assert result == NO_DUPLICATE
        elif result != NO_DUPLICATE and not result.failed:
            assert result.index in set(inst.duplicates.tolist())

    def test_space_linear_in_s(self):
        base = ShortStreamDuplicateFinder(1 << 10, s=1, delta=0.3, seed=1,
                                          sampler_rounds=2)
        big = ShortStreamDuplicateFinder(1 << 10, s=50, delta=0.3, seed=1,
                                         sampler_rounds=2)
        extra = big.space_bits() - base.space_bits()
        # the added cost is the 5s-sparse recovery: O(s log n)
        assert extra == pytest.approx(
            (5 * 49) * 2 * 21, rel=0.5)


class TestLongStreams:
    def test_position_strategy_chosen_when_extra_large(self):
        finder = LongStreamDuplicateFinder(256, extra=128, seed=1)
        assert finder.strategy == "positions"

    def test_sampler_strategy_chosen_when_extra_small(self):
        finder = LongStreamDuplicateFinder(256, extra=2, seed=1)
        assert finder.strategy == "sampler"

    def test_position_strategy_finds_duplicates(self):
        n, found = 256, 0
        for seed in range(8):
            inst = long_stream(n, extra=128, seed=seed)
            finder = LongStreamDuplicateFinder(n, extra=128, delta=0.2,
                                               seed=seed)
            finder.process_items(inst.items)
            result = finder.result()
            if not result.failed:
                assert result.index in set(inst.duplicates.tolist())
                found += 1
        assert found >= 6

    def test_position_strategy_space_smaller_than_sampler(self):
        n = 1 << 12
        positions = LongStreamDuplicateFinder(n, extra=n // 2, seed=1)
        assert positions.strategy == "positions"
        sampler = DuplicateFinder(n, delta=0.25, seed=1, sampler_rounds=2)
        assert positions.space_bits() < sampler.space_bits()

    def test_rejects_nonpositive_extra(self):
        with pytest.raises(ValueError):
            LongStreamDuplicateFinder(100, extra=0)
