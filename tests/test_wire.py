"""The wire frame codec: round trips, determinism, corruption, streams.

The unified serialization layer (``repro.wire``) carries every
checkpoint, sketch blob and delta in the repository, so its contract
is tested directly at the byte level here — the serializer suites
(test_serialize, test_engine_checkpoint, test_delta_follower) then
only test their own payload semantics on top.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.wire import (COMPRESSIONS, KIND_DELTA, KIND_PIPELINE,
                        KIND_SKETCH, KIND_STRUCTURE, MAGIC, WIRE_VERSION,
                        WireError, decode_frame, encode_frame,
                        frame_length, peek_header, peek_kind, read_frames,
                        split_frames)

ARRAYS = [
    np.arange(17, dtype=np.int64),
    np.zeros((3, 5), dtype=np.float64),
    np.array([[1, -2], [3, -4]], dtype=np.int8),
    np.array([2**63 - 1, 7], dtype=np.uint64),
    np.array([True, False, True]),
    np.empty((0,), dtype=np.int32),
    np.arange(24, dtype=np.float32).reshape(2, 3, 4),
]

HEADER = {"class": "Thing", "params": {"n": 1024, "seed": 3},
          "note": "unicode ✓"}


class TestRoundTrip:

    @pytest.mark.parametrize("compress", COMPRESSIONS)
    def test_header_and_sections_survive(self, compress):
        blob = encode_frame(KIND_STRUCTURE, HEADER, ARRAYS,
                            compress=compress)
        frame = decode_frame(blob)
        assert frame.kind == KIND_STRUCTURE
        assert frame.kind_name == "structure"
        assert frame.header == HEADER
        assert len(frame.sections) == len(ARRAYS)
        for mine, theirs in zip(ARRAYS, frame.sections):
            assert mine.dtype == theirs.dtype
            assert mine.shape == theirs.shape
            assert np.array_equal(mine, theirs)

    def test_decoded_arrays_are_writable_copies(self):
        blob = encode_frame(KIND_SKETCH, {}, [np.arange(4)])
        frame = decode_frame(blob)
        frame.sections[0][0] = 99          # must not raise
        assert decode_frame(blob).sections[0][0] == 0

    def test_sectionless_frame(self):
        frame = decode_frame(encode_frame(KIND_DELTA, {"epoch": 3}))
        assert frame.header == {"epoch": 3}
        assert frame.sections == []

    def test_deterministic_bytes(self):
        first = encode_frame(KIND_PIPELINE, HEADER, ARRAYS, "zlib")
        second = encode_frame(KIND_PIPELINE, HEADER, ARRAYS, "zlib")
        assert first == second

    def test_zlib_shrinks_sparse_payloads(self):
        sparse = np.zeros(4096, dtype=np.int64)
        sparse[7] = 5
        plain = encode_frame(KIND_STRUCTURE, {}, [sparse], "none")
        packed = encode_frame(KIND_STRUCTURE, {}, [sparse], "zlib")
        assert len(packed) < len(plain) / 10

    def test_non_contiguous_input_encodes(self):
        arr = np.arange(24, dtype=np.int64).reshape(4, 6)[:, ::2]
        frame = decode_frame(encode_frame(KIND_SKETCH, {}, [arr]))
        assert np.array_equal(frame.sections[0], arr)


class TestEncodeValidation:

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireError, match="kind"):
            encode_frame(99, {})

    def test_unknown_compression_rejected(self):
        with pytest.raises(WireError, match="compress"):
            encode_frame(KIND_SKETCH, {}, compress="lz4")


class TestDecodeValidation:

    def blob(self, **kwargs):
        return encode_frame(KIND_STRUCTURE, HEADER, ARRAYS[:2], **kwargs)

    def test_bad_magic_rejected(self):
        with pytest.raises(WireError, match="magic"):
            decode_frame(b"NOTRPROWF" + self.blob())

    def test_foreign_version_rejected(self):
        blob = bytearray(self.blob())
        blob[len(MAGIC)] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="version"):
            decode_frame(bytes(blob))

    def test_unknown_kind_byte_rejected(self):
        blob = bytearray(self.blob())
        blob[len(MAGIC) + 1] = 200
        with pytest.raises(WireError, match="kind"):
            decode_frame(bytes(blob))

    @pytest.mark.parametrize("keep", [0, 3, 7, 9, 30])
    def test_truncation_always_loud(self, keep):
        with pytest.raises(WireError):
            decode_frame(self.blob()[:keep])

    def test_every_truncation_point_is_loud(self):
        blob = self.blob(compress="zlib")
        for keep in range(len(blob)):
            with pytest.raises(WireError):
                decode_frame(blob[:keep])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(WireError, match="trailing"):
            decode_frame(self.blob() + b"x")

    def test_expect_kind_mismatch_is_loud(self):
        with pytest.raises(WireError,
                           match="expected a delta frame, got structure"):
            decode_frame(self.blob(), expect_kind=KIND_DELTA)

    def test_unknown_section_flags_rejected(self):
        blob = encode_frame(KIND_SKETCH, {}, [np.arange(3)])
        index = blob.index(np.arange(3, dtype=np.int64).tobytes())
        # the flags byte sits 1 (flags) + 1+3 (dtype) + 1+1 (shape) +
        # 1 (payload len) = 8 bytes before the payload
        mutated = bytearray(blob)
        mutated[index - 8] |= 0x80
        with pytest.raises(WireError, match="flags"):
            decode_frame(bytes(mutated))

    def test_corrupt_zlib_payload_rejected(self):
        blob = bytearray(self.blob(compress="zlib"))
        blob[-1] ^= 0xFF
        with pytest.raises(WireError, match="inflate"):
            decode_frame(bytes(blob))

    def test_non_object_header_rejected(self):
        import io
        import json

        from repro.wire.frame import _write_uvarint

        encoded = json.dumps([1, 2]).encode()
        body = io.BytesIO()
        _write_uvarint(body, len(encoded))
        body.write(encoded)
        _write_uvarint(body, 0)
        payload = body.getvalue()
        out = io.BytesIO()
        out.write(MAGIC)
        out.write(bytes([WIRE_VERSION, KIND_SKETCH]))
        _write_uvarint(out, len(payload))
        out.write(payload)
        with pytest.raises(WireError, match="JSON object"):
            decode_frame(out.getvalue())


class TestPeeking:

    def test_peek_kind_and_header(self):
        blob = encode_frame(KIND_PIPELINE, HEADER, ARRAYS)
        assert peek_kind(blob) == KIND_PIPELINE
        kind, header = peek_header(blob)
        assert (kind, header) == (KIND_PIPELINE, HEADER)

    def test_frame_length_matches_encoding(self):
        blob = encode_frame(KIND_SKETCH, HEADER, ARRAYS, "zlib")
        assert frame_length(blob) == len(blob)
        assert frame_length(b"\x00" * 5 + blob, offset=5) == len(blob)


class TestStreams:

    def frames(self):
        return [encode_frame(KIND_DELTA, {"epoch": i},
                             [np.arange(i + 1)]) for i in range(4)]

    def test_split_round_trips_concatenation(self):
        blobs = self.frames()
        split, consumed = split_frames(b"".join(blobs))
        assert split == blobs
        assert consumed == sum(len(b) for b in blobs)

    def test_partial_tail_left_for_later(self):
        blobs = self.frames()
        data = b"".join(blobs) + blobs[0][:7]     # a mid-write tail
        split, consumed = split_frames(data)
        assert split == blobs
        assert data[consumed:] == blobs[0][:7]

    def test_corrupt_stream_is_loud_not_skipped(self):
        with pytest.raises(WireError, match="magic"):
            split_frames(self.frames()[0] + b"garbage-not-a-frame")

    def test_read_frames_decodes_everything(self):
        frames = read_frames(b"".join(self.frames()))
        assert [f.header["epoch"] for f in frames] == [0, 1, 2, 3]

    def test_read_frames_rejects_partial_tail(self):
        data = b"".join(self.frames()) + MAGIC[:3]
        with pytest.raises(WireError, match="incomplete"):
            read_frames(data)
