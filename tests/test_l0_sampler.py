"""Tests for the Theorem 2 L0-sampler (core/l0_sampler.py)."""

import numpy as np
import pytest

from repro.core import L0Sampler
from repro.streams import sparse_vector, vector_to_stream


def run_samplers(vector, trials, delta=0.25, mode="kwise", seed_base=0):
    stream = vector_to_stream(vector, seed=77)
    results = []
    for t in range(trials):
        sampler = L0Sampler(vector.size, delta=delta, seed=seed_base + t,
                            mode=mode)
        stream.apply_to(sampler)
        results.append(sampler.sample())
    return results


class TestValidation:
    def test_bad_delta(self):
        with pytest.raises(ValueError):
            L0Sampler(100, delta=0.0)
        with pytest.raises(ValueError):
            L0Sampler(100, delta=1.0)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            L0Sampler(100, mode="oracle")

    def test_sparsity_follows_delta(self):
        loose = L0Sampler(100, delta=0.5)
        tight = L0Sampler(100, delta=0.01)
        assert tight.sparsity > loose.sparsity


class TestCorrectness:
    def test_zero_vector_fails(self):
        sampler = L0Sampler(128, seed=1)
        assert sampler.sample().failed

    def test_cancellation_fails(self):
        sampler = L0Sampler(128, seed=2)
        sampler.update(3, 5)
        sampler.update(3, -5)
        assert sampler.sample().failed

    def test_single_coordinate(self):
        sampler = L0Sampler(128, seed=3)
        sampler.update(42, -9)
        result = sampler.sample()
        assert not result.failed
        assert result.index == 42 and result.estimate == -9

    @pytest.mark.parametrize("support", [2, 10, 50])
    def test_samples_land_in_support_with_exact_values(self, support):
        n = 256
        vec = sparse_vector(n, support, seed=support)
        results = run_samplers(vec, trials=40, seed_base=support * 100)
        hits = [r for r in results if not r.failed]
        assert len(hits) >= 30
        for r in hits:
            assert vec[r.index] != 0
            assert r.estimate == vec[r.index]  # ZERO relative error

    def test_failure_rate_below_delta(self):
        n = 512
        vec = sparse_vector(n, 100, seed=5)
        results = run_samplers(vec, trials=60, delta=0.2, seed_base=900)
        failure_rate = sum(r.failed for r in results) / len(results)
        assert failure_rate <= 0.2 + 0.1  # delta plus sampling slack


class TestUniformity:
    """Uniformity checks via the shared chi-square harness
    (tests/_stattools.py) rather than per-test absolute tolerances."""

    def test_small_support_uniform(self):
        """|J| <= s: recovery is exact, choice must be uniform."""
        from _stattools import assert_uniform_over

        n = 256
        vec = np.zeros(n, dtype=np.int64)
        support = [3, 50, 200]
        for i in support:
            vec[i] = 1
        results = run_samplers(vec, trials=240, seed_base=111)
        indices = [r.index for r in results if not r.failed]
        assert_uniform_over(indices, support, min_samples=200)

    def test_large_support_roughly_uniform(self):
        from _stattools import assert_binomial_fraction

        n = 512
        vec = sparse_vector(n, 120, seed=7)
        vec[vec != 0] = np.abs(vec[vec != 0])  # magnitudes irrelevant
        huge = np.flatnonzero(vec)[:5]
        vec[huge] = 10**6                      # huge values, same L0 law
        results = run_samplers(vec, trials=150, seed_base=222)
        indices = [r.index for r in results if not r.failed]
        assert len(indices) >= 100
        # under uniform support sampling the 5 huge coordinates draw a
        # Binomial(successes, 5/120) share of the samples — magnitudes
        # must not inflate it.
        hits = sum(int(i) in set(huge.tolist()) for i in indices)
        assert_binomial_fraction(hits, len(indices), 5 / 120)


class TestFullSupportRecovery:
    def test_exact_support_when_sparse(self):
        n = 128
        vec = sparse_vector(n, 4, seed=9)
        sampler = L0Sampler(n, delta=0.1, seed=10)
        vector_to_stream(vec, seed=1).apply_to(sampler)
        support = sampler.recover_full_support()
        assert support is not None
        assert set(support.tolist()) == set(np.flatnonzero(vec).tolist())

    def test_none_when_dense(self):
        n = 128
        vec = sparse_vector(n, 64, seed=11)
        sampler = L0Sampler(n, delta=0.5, seed=12)
        vector_to_stream(vec, seed=2).apply_to(sampler)
        assert sampler.recover_full_support() is None


class TestSpace:
    def test_space_scales_log_squared(self):
        small = L0Sampler(1 << 8, delta=0.25, seed=1)
        large = L0Sampler(1 << 16, delta=0.25, seed=1)
        ratio = large.space_report().counter_total \
            / small.space_report().counter_total
        assert 2.5 < ratio < 6.5

    def test_nisan_seed_is_log_squared(self):
        sampler = L0Sampler(1 << 10, delta=0.25, seed=1, mode="nisan")
        seed_bits = sampler.space_report().seed_total
        # (2 * 10 + 1) * 61 for the PRG plus recovery fingerprints
        assert seed_bits >= (2 * 10 + 1) * 61
