"""Tests for the prior-work baselines (AKO, FIS, GR shapes)."""

import numpy as np
import pytest

from repro.baselines import AKOSampler, FISL0Sampler, GRDuplicatesBaseline
from repro.baselines.ako import AKOSamplerRound
from repro.core import L0Sampler, LpSamplerRound
from repro.streams import (duplicate_stream, sparse_vector, vector_to_stream,
                           zipf_vector)


class TestAKO:
    def test_validation(self):
        with pytest.raises(ValueError):
            AKOSamplerRound(100, 2.5, 0.5)

    def test_round_samples_support(self):
        n = 256
        vec = zipf_vector(n, scale=400, seed=1)
        stream = vector_to_stream(vec, seed=1)
        hits = 0
        for seed in range(60):
            rnd = AKOSamplerRound(n, 1.0, 0.3, seed=seed)
            stream.apply_to(rnd)
            result = rnd.sample()
            if not result.failed:
                hits += 1
                assert vec[result.index] != 0
        assert hits >= 3

    def test_amplified_succeeds(self):
        n = 200
        vec = zipf_vector(n, scale=300, seed=2)
        sampler = AKOSampler(n, 1.0, eps=0.3, delta=0.2, seed=3)
        vector_to_stream(vec, seed=2).apply_to(sampler)
        result = sampler.sample()
        assert not result.failed

    def test_extra_log_factor_in_m(self):
        """The defining difference: AKO's count-sketch m carries log n."""
        ours = LpSamplerRound(1 << 12, 1.5, 0.25, seed=1)
        theirs = AKOSamplerRound(1 << 12, 1.5, 0.25, seed=1)
        assert theirs.m > ours.m
        small = AKOSamplerRound(1 << 6, 1.5, 0.25, seed=1)
        assert theirs.m == pytest.approx(2 * small.m, rel=0.2)

    def test_space_one_log_above_ours(self):
        log_ratio = {}
        for log_n in (8, 16):
            ours = LpSamplerRound(1 << log_n, 1.5, 0.5, seed=1)
            theirs = AKOSamplerRound(1 << log_n, 1.5, 0.5, seed=1)
            log_ratio[log_n] = (theirs.space_report().counter_total
                                / ours.space_report().counter_total)
        # the ratio itself must grow ~linearly with log n
        assert log_ratio[16] == pytest.approx(2 * log_ratio[8], rel=0.45)


class TestFIS:
    def test_samples_support_exactly(self):
        n = 256
        vec = sparse_vector(n, 20, seed=4)
        stream = vector_to_stream(vec, seed=4)
        hits = 0
        for seed in range(15):
            sampler = FISL0Sampler(n, seed=seed)
            stream.apply_to(sampler)
            result = sampler.sample()
            if not result.failed:
                hits += 1
                assert vec[result.index] != 0
                assert result.estimate == vec[result.index]
        assert hits >= 12

    def test_zero_vector_fails(self):
        sampler = FISL0Sampler(128, seed=1)
        assert sampler.sample().failed

    def test_space_one_log_above_ours(self):
        ratios = {}
        for log_n in (7, 14):
            ours = L0Sampler(1 << log_n, delta=0.25, seed=1)
            theirs = FISL0Sampler(1 << log_n, seed=1)
            ratios[log_n] = (theirs.space_report().counter_total
                             / ours.space_report().counter_total)
        assert ratios[14] > 1.4 * ratios[7]


class TestGRBaseline:
    def test_finds_duplicates(self):
        n, found = 96, 0
        for seed in range(4):
            inst = duplicate_stream(n, seed=seed)
            baseline = GRDuplicatesBaseline(n, delta=0.25, seed=seed)
            baseline.process_items(inst.items)
            result = baseline.result()
            if not result.failed:
                assert result.index in set(inst.duplicates.tolist())
                found += 1
        assert found >= 2

    def test_space_above_theorem3(self):
        from repro.apps.duplicates import DuplicateFinder

        n = 1 << 10
        ours = DuplicateFinder(n, delta=0.25, seed=1, sampler_rounds=2)
        theirs = GRDuplicatesBaseline(n, delta=0.25, seed=1)
        assert theirs.space_bits() > ours.space_bits()
