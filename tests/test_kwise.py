"""Unit tests for the k-wise independent hash families (hashing/kwise.py)."""

import numpy as np
import pytest

from repro.hashing.kwise import (BucketHash, KWiseHash, SignHash, SubsetHash,
                                 UniformScalarHash, derive_rngs)


class TestKWiseHash:
    def test_deterministic(self, rng):
        h = KWiseHash(4, rng)
        keys = np.arange(100, dtype=np.uint64)
        assert np.array_equal(h(keys), h(keys))

    def test_scalar_and_vector_agree(self, rng):
        h = KWiseHash(3, rng)
        keys = np.arange(20, dtype=np.uint64)
        vec = h(keys)
        for i, key in enumerate(keys):
            assert int(h(int(key))) == int(vec[i])

    def test_rejects_k_zero(self, rng):
        with pytest.raises(ValueError):
            KWiseHash(0, rng)

    def test_different_rng_states_differ(self):
        r1, r2 = derive_rngs(1, 2)
        h1, h2 = KWiseHash(3, r1), KWiseHash(3, r2)
        keys = np.arange(50, dtype=np.uint64)
        assert not np.array_equal(h1(keys), h2(keys))

    def test_values_in_field(self, rng):
        h = KWiseHash(5, rng)
        vals = h(np.arange(1000, dtype=np.uint64))
        assert vals.max() < h.field.p

    def test_marginal_uniformity(self):
        """Mean of hash values over many keys approaches p/2."""
        (r,) = derive_rngs(7, 1)
        h = KWiseHash(2, r)
        vals = h(np.arange(20000, dtype=np.uint64)).astype(np.float64)
        mean = vals.mean() / float(h.field.p)
        assert 0.45 < mean < 0.55

    def test_pairwise_independence_statistic(self):
        """Over the random choice of function, h(a) and h(b) for fixed
        distinct keys are independent — correlation across many sampled
        functions is near zero.  (Within ONE function the values are
        affinely related; independence is a property of the family.)"""
        rng = np.random.default_rng(11)
        keys = np.array([3, 77777], dtype=np.uint64)
        pairs = np.empty((3000, 2), dtype=np.float64)
        for t in range(pairs.shape[0]):
            h = KWiseHash(2, rng)
            pairs[t] = h(keys).astype(np.float64)
        corr = np.corrcoef(pairs[:, 0], pairs[:, 1])[0, 1]
        assert abs(corr) < 0.06

    def test_space_bits_scales_with_k(self, rng):
        h2 = KWiseHash(2, rng)
        h8 = KWiseHash(8, rng)
        assert h8.space_bits() == 4 * h2.space_bits()


class TestBucketHash:
    def test_range(self, rng):
        h = BucketHash(2, 37, rng)
        vals = h(np.arange(5000, dtype=np.uint64))
        assert vals.min() >= 0 and vals.max() < 37

    def test_rejects_zero_buckets(self, rng):
        with pytest.raises(ValueError):
            BucketHash(2, 0, rng)

    def test_roughly_balanced(self):
        (r,) = derive_rngs(3, 1)
        h = BucketHash(2, 16, r)
        vals = h(np.arange(32000, dtype=np.uint64))
        counts = np.bincount(vals.astype(np.int64), minlength=16)
        assert counts.min() > 1500 and counts.max() < 2500


class TestSignHash:
    def test_values_are_pm1(self, rng):
        g = SignHash(4, rng)
        vals = g(np.arange(1000, dtype=np.uint64))
        assert set(np.unique(vals).tolist()) <= {-1, 1}

    def test_roughly_balanced(self):
        (r,) = derive_rngs(5, 1)
        g = SignHash(4, r)
        vals = g(np.arange(20000, dtype=np.uint64)).astype(np.float64)
        assert abs(vals.mean()) < 0.03

    def test_fourwise_products_balanced(self):
        """E[g(a)g(b)g(c)g(d)] ~ 0 for distinct keys (4-wise property)."""
        (r,) = derive_rngs(9, 1)
        g = SignHash(4, r)
        keys = np.arange(40000, dtype=np.uint64)
        prod = (g(keys).astype(np.float64) * g(keys + np.uint64(1))
                * g(keys + np.uint64(2)) * g(keys + np.uint64(3)))
        assert abs(prod.mean()) < 0.05


class TestUniformScalarHash:
    def test_range_is_open_zero(self, rng):
        t = UniformScalarHash(6, rng)
        vals = t(np.arange(10000, dtype=np.uint64))
        assert vals.min() > 0.0
        assert vals.max() <= 1.0

    def test_mean_near_half(self):
        (r,) = derive_rngs(13, 1)
        t = UniformScalarHash(6, r)
        vals = t(np.arange(40000, dtype=np.uint64))
        assert abs(vals.mean() - 0.5) < 0.01

    def test_inverse_tail_probability(self):
        """Pr[1/t >= T] = 1/T, the key precision-sampling identity."""
        (r,) = derive_rngs(17, 1)
        t = UniformScalarHash(6, r)
        vals = t(np.arange(100000, dtype=np.uint64))
        for threshold in (2.0, 10.0, 50.0):
            rate = float((1.0 / vals >= threshold).mean())
            assert rate == pytest.approx(1.0 / threshold, rel=0.2)


class TestSubsetHash:
    def test_level_zero_includes_everything_at_top(self, rng):
        s = SubsetHash(2, rng)
        member = s.level_member(np.arange(100, dtype=np.uint64), 10, 1024)
        assert member.all()

    def test_level_sizes_halve(self):
        (r,) = derive_rngs(19, 1)
        s = SubsetHash(2, r)
        universe = 4096
        keys = np.arange(universe, dtype=np.uint64)
        sizes = [int(s.level_member(keys, level, universe).sum())
                 for level in range(13)]
        # level 12 = everything; each step down halves in expectation
        assert sizes[12] == universe
        for level in range(6, 12):
            expected = universe * 2.0 ** (level - 12)
            assert sizes[level] == pytest.approx(expected, rel=0.5)


class TestDeriveRngs:
    def test_reproducible(self):
        a = derive_rngs(42, 3)
        b = derive_rngs(42, 3)
        for ra, rb in zip(a, b):
            assert ra.integers(1 << 30) == rb.integers(1 << 30)

    def test_accepts_seedsequence(self):
        seq = np.random.SeedSequence(7)
        rngs = derive_rngs(seq, 2)
        assert len(rngs) == 2
