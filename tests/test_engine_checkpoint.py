"""Serialization round-trips for every engine-registered type, plus
wire-format hardening (stale versions, garbage, tampered headers)."""

import io
import json

import numpy as np
import pytest

from repro.core import L0Sampler
from repro.engine import (FORMAT_VERSION, ShardedPipeline, StaleCheckpoint,
                          checkpoint, clone, restore, state_arrays)
from repro.wire import decode_frame, encode_frame

from _engine_cases import CASES, CASE_IDS, feed


def _tamper_header(blob: bytes, mutate) -> bytes:
    """Decode the wire frame, apply ``mutate(header dict)``, re-encode
    (kind and sections untouched)."""
    frame = decode_frame(blob)
    mutate(frame.header)
    return encode_frame(frame.kind, frame.header, frame.sections)


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
class TestRoundtrip:
    def test_state_survives(self, case):
        original = case.factory(128, 5)
        feed(case, original, 128, 90, 5)
        twin = restore(checkpoint(original))
        assert type(twin) is type(original)
        for a, b in zip(state_arrays(original), state_arrays(twin)):
            assert np.array_equal(a, b)
            assert a.dtype == b.dtype

    def test_twin_continues_the_same_linear_map(self, case):
        original = case.factory(128, 5)
        feed(case, original, 128, 40, 5)
        twin = restore(checkpoint(original))
        feed(case, original, 128, 40, 6)
        feed(case, twin, 128, 40, 6)
        for a, b in zip(state_arrays(original), state_arrays(twin)):
            assert np.array_equal(a, b)

    def test_clone_is_independent(self, case):
        original = case.factory(128, 5)
        feed(case, original, 128, 40, 5)
        twin = clone(original)
        before = [np.array(a, copy=True) for a in state_arrays(twin)]
        feed(case, original, 128, 40, 7)
        assert all(np.array_equal(a, b)
                   for a, b in zip(before, state_arrays(twin)))


class TestQueryRNGContinuity:
    def test_l0_choice_rng_survives_checkpoint(self):
        """sample() consumes the choice RNG; a restored sampler must
        *continue* the draw sequence, not replay it from the seed."""
        sampler = L0Sampler(256, delta=0.2, seed=8)
        rng = np.random.default_rng(3)
        sampler.update_many(rng.integers(0, 256, 120),
                            rng.integers(1, 5, 120))
        for _ in range(3):
            sampler.sample()           # advance the choice RNG
        twin = restore(checkpoint(sampler))
        for _ in range(5):
            mine, theirs = sampler.sample(), twin.sample()
            assert mine.failed == theirs.failed
            assert mine.index == theirs.index


class TestRestoreSkipsBaselineRebuild:
    def test_duplicate_finder_twin_is_loaded_not_refed(self):
        """The restore path builds an empty twin (include_baseline=False)
        and loads state; behaviour must match the normal constructor."""
        from repro.apps.duplicates import DuplicateFinder
        from repro.streams import duplicate_stream

        instance = duplicate_stream(128, seed=6)
        finder = DuplicateFinder(128, delta=0.2, seed=9, sampler_rounds=4)
        finder.process_items(instance.items[:70])
        twin = restore(checkpoint(finder))
        for a, b in zip(state_arrays(finder), state_arrays(twin)):
            assert np.array_equal(a, b)
        finder.process_items(instance.items[70:])
        twin.process_items(instance.items[70:])
        assert str(finder.result()) == str(twin.result())

    def test_empty_twin_really_lacks_the_baseline(self):
        from repro.apps.duplicates import DuplicateFinder

        empty = DuplicateFinder(64, delta=0.25, seed=1, sampler_rounds=2,
                                include_baseline=False)
        assert all(not arr.any() for arr in state_arrays(empty))


class TestWireFormat:
    def _blob(self):
        sampler = L0Sampler(128, delta=0.2, seed=4)
        sampler.update_many(np.arange(10), np.arange(1, 11))
        return checkpoint(sampler)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            restore(b"definitely not a checkpoint")

    def test_sketch_frame_rejected_by_structure_restore(self):
        """serialize.py frames carry a different kind tag."""
        from repro.sketch import CountSketch

        sketch_frame = CountSketch(64, m=4, rows=5, seed=1).to_bytes()
        with pytest.raises(ValueError, match="structure frame"):
            restore(sketch_frame)

    def test_truncated_blob_rejected(self):
        blob = self._blob()
        for cut in (8, 100, len(blob) - 40):
            with pytest.raises(ValueError):
                restore(blob[:cut])

    def test_stale_version_rejected(self):
        def age(header):
            header["format"] = FORMAT_VERSION - 1

        stale = _tamper_header(self._blob(), age)
        with pytest.raises(StaleCheckpoint, match="format"):
            restore(stale)

    def test_future_version_rejected(self):
        def advance(header):
            header["format"] = FORMAT_VERSION + 1

        with pytest.raises(StaleCheckpoint):
            restore(_tamper_header(self._blob(), advance))

    def test_unknown_class_rejected(self):
        def rename(header):
            header["class"] = "L0Samplezz"

        with pytest.raises(ValueError, match="unknown"):
            restore(_tamper_header(self._blob(), rename))

    def test_tampered_params_shape_mismatch_rejected(self):
        def shrink(header):
            header["params"]["sparsity"] = 2  # shrinks the syndromes

        with pytest.raises(ValueError, match="mismatch"):
            restore(_tamper_header(self._blob(), shrink))

    def test_pipeline_frame_kind_rejected(self):
        pipeline = ShardedPipeline(lambda: L0Sampler(64, seed=1), shards=2)
        blob = pipeline.checkpoint()
        with pytest.raises(ValueError, match="pipeline"):
            restore(blob)              # structure restore on pipeline frame
        with pytest.raises(ValueError, match="structure"):
            ShardedPipeline.restore(self._blob())  # and vice versa

    def test_pipeline_stale_version_rejected(self):
        pipeline = ShardedPipeline(lambda: L0Sampler(64, seed=1), shards=2)

        def advance(header):
            header["format"] = FORMAT_VERSION + 3

        tampered = _tamper_header(pipeline.checkpoint(), advance)
        with pytest.raises(StaleCheckpoint):
            ShardedPipeline.restore(tampered)

    def test_unregistered_type_has_no_checkpoint(self):
        from repro.core import ReservoirSampler

        with pytest.raises(TypeError, match="not registered"):
            checkpoint(ReservoirSampler(64, seed=1))


# Pipeline checkpoints are wire frames too — same tamper helper.
_tamper_pipeline_header = _tamper_header


class TestPipelineHeaderValidation:
    """`ShardedPipeline.restore` must reject tampered headers instead
    of restoring a pipeline that misbehaves at the next ingest."""

    def _blob(self, shards: int = 2) -> bytes:
        pipeline = ShardedPipeline(lambda: L0Sampler(64, seed=1),
                                   shards=shards, chunk_size=8)
        pipeline.ingest(np.arange(16), np.ones(16, dtype=np.int64))
        return pipeline.checkpoint()

    def test_unknown_partition_rejected(self):
        def bogus(header):
            header["partition"] = "bogus"

        with pytest.raises(ValueError, match="partition"):
            ShardedPipeline.restore(
                _tamper_pipeline_header(self._blob(), bogus))

    @pytest.mark.parametrize("bad", [0, -3, "16", 2.5, None, True])
    def test_invalid_chunk_size_rejected(self, bad):
        def poison(header):
            header["chunk_size"] = bad

        with pytest.raises(ValueError, match="chunk_size"):
            ShardedPipeline.restore(
                _tamper_pipeline_header(self._blob(), poison))

    def test_negative_updates_ingested_rejected(self):
        def negate(header):
            header["updates_ingested"] = -7

        with pytest.raises(ValueError, match="updates_ingested"):
            ShardedPipeline.restore(
                _tamper_pipeline_header(self._blob(), negate))

    def test_shards_count_below_payload_rejected(self):
        """Declaring fewer shards than framed sections — silently
        dropping a shard's state would be a lie."""
        def shrink(header):
            header["shards"] = 1

        with pytest.raises(ValueError, match="shard"):
            ShardedPipeline.restore(
                _tamper_pipeline_header(self._blob(shards=2), shrink))

    def test_shards_count_above_payload_rejected(self):
        def inflate(header):
            header["shards"] = 5

        with pytest.raises(ValueError, match="shard"):
            ShardedPipeline.restore(
                _tamper_pipeline_header(self._blob(shards=2), inflate))

    def test_zero_shards_rejected(self):
        def zero(header):
            header["shards"] = 0
            header["cursor"] = 0

        with pytest.raises(ValueError, match="shards"):
            ShardedPipeline.restore(
                _tamper_pipeline_header(self._blob(), zero))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError, match="trailing"):
            ShardedPipeline.restore(self._blob() + b"garbage")

    def test_cursor_out_of_range_rejected(self):
        def runaway(header):
            header["cursor"] = header["shards"]

        with pytest.raises(ValueError, match="cursor"):
            ShardedPipeline.restore(
                _tamper_pipeline_header(self._blob(), runaway))

    def test_non_object_header_rejected(self):
        frame = decode_frame(self._blob())
        bad = encode_frame(frame.kind, [1, 2, 3], frame.sections)
        with pytest.raises(ValueError):
            ShardedPipeline.restore(bad)

    def test_truncated_payload_rejected(self):
        blob = self._blob()
        for cut in (8, len(blob) // 2, len(blob) - 9):
            with pytest.raises(ValueError):
                ShardedPipeline.restore(blob[:cut])

    def test_intact_blob_still_restores(self):
        """The validation must not reject what checkpoint() writes."""
        restored = ShardedPipeline.restore(self._blob())
        assert restored.updates_ingested == 16
        assert restored.shards == 2

    def test_shards_override_does_not_bypass_validation(self):
        """restore(..., shards=) folds and re-seats, but only after the
        header passed the same checks as a plain restore — corruption
        cannot hide behind the cross-K path."""
        def bogus_partition(header):
            header["partition"] = "bogus"

        def inflate(header):
            header["shards"] = 5   # more than the framed payload

        with pytest.raises(ValueError, match="partition"):
            ShardedPipeline.restore(
                _tamper_pipeline_header(self._blob(), bogus_partition),
                shards=4)
        with pytest.raises(ValueError, match="shard"):
            ShardedPipeline.restore(
                _tamper_pipeline_header(self._blob(), inflate), shards=4)
        with pytest.raises(ValueError, match="trailing"):
            ShardedPipeline.restore(self._blob() + b"junk", shards=4)

    def test_shards_override_cross_k_restores_and_continues(self):
        pipeline = ShardedPipeline(lambda: L0Sampler(64, seed=1),
                                   shards=2, chunk_size=8)
        pipeline.ingest(np.arange(16), np.ones(16, dtype=np.int64))
        restored = ShardedPipeline.restore(pipeline.checkpoint(),
                                           shards=4)
        assert restored.shards == 4
        assert restored.updates_ingested == 16
        restored.ingest(np.arange(8), np.ones(8, dtype=np.int64))
        pipeline.ingest(np.arange(8), np.ones(8, dtype=np.int64))
        mine = state_arrays(pipeline.merged())
        theirs = state_arrays(restored.merged())
        assert all(np.array_equal(a, b) for a, b in zip(mine, theirs))


def _legacy_structure_blob(obj, fmt: int = 2) -> bytes:
    """Re-create a pre-wire (format-2 ``RPROCK``) checkpoint blob."""
    from repro.engine import params_of

    header = json.dumps({
        "format": fmt,
        "class": type(obj).__name__,
        "params": params_of(obj),
    }).encode("utf-8")
    buffer = io.BytesIO()
    np.savez(buffer, **{f"a{i}": np.asarray(a)
                        for i, a in enumerate(state_arrays(obj))})
    return (b"RPROCK" + len(header).to_bytes(4, "big") + header
            + buffer.getvalue())


def _legacy_pipeline_blob(header: dict, shard_blobs: list) -> bytes:
    """Re-create a pre-wire (format-2 ``RPROPL``) pipeline blob."""
    encoded = json.dumps(header).encode("utf-8")
    out = io.BytesIO()
    out.write(b"RPROPL")
    out.write(len(encoded).to_bytes(4, "big"))
    out.write(encoded)
    for blob in shard_blobs:
        out.write(len(blob).to_bytes(8, "big"))
        out.write(blob)
    return out.getvalue()


class TestLegacyReaders:
    """Blobs written by the previous release (format 2, ``RPROCK`` /
    ``RPROPL`` magics) stay restorable for one release."""

    def test_legacy_structure_blob_restores(self):
        sampler = L0Sampler(128, delta=0.2, seed=4)
        sampler.update_many(np.arange(20), np.arange(1, 21))
        twin = restore(_legacy_structure_blob(sampler))
        assert type(twin) is L0Sampler
        for a, b in zip(state_arrays(sampler), state_arrays(twin)):
            assert np.array_equal(a, b)

    def test_legacy_structure_older_than_legacy_rejected(self):
        sampler = L0Sampler(64, seed=2)
        with pytest.raises(StaleCheckpoint, match="format"):
            restore(_legacy_structure_blob(sampler, fmt=1))

    def test_legacy_pipeline_blob_restores(self):
        pipeline = ShardedPipeline(lambda: L0Sampler(64, seed=1),
                                   shards=2, chunk_size=8)
        pipeline.ingest(np.arange(16), np.ones(16, dtype=np.int64))
        shard_blobs = [_legacy_structure_blob(s)
                       for s in pipeline.shard_instances]
        legacy = _legacy_pipeline_blob({
            "format": 2,
            "partition": pipeline.partition,
            "chunk_size": pipeline.chunk_size,
            "cursor": 0,
            "updates_ingested": pipeline.updates_ingested,
            "shards": pipeline.shards,
        }, shard_blobs)
        restored = ShardedPipeline.restore(legacy)
        assert restored.updates_ingested == 16
        mine = state_arrays(pipeline.merged())
        theirs = state_arrays(restored.merged())
        assert all(np.array_equal(a, b) for a, b in zip(mine, theirs))

    def test_legacy_pipeline_blob_restores_on_process_backend(self):
        """The signature fast path must peek legacy shard headers too."""
        pytest.importorskip("multiprocessing")
        pipeline = ShardedPipeline(lambda: L0Sampler(64, seed=1),
                                   shards=2, chunk_size=8)
        pipeline.ingest(np.arange(16), np.ones(16, dtype=np.int64))
        shard_blobs = [_legacy_structure_blob(s)
                       for s in pipeline.shard_instances]
        legacy = _legacy_pipeline_blob({
            "format": 2,
            "partition": pipeline.partition,
            "chunk_size": pipeline.chunk_size,
            "cursor": 0,
            "updates_ingested": pipeline.updates_ingested,
            "shards": pipeline.shards,
        }, shard_blobs)
        with ShardedPipeline.restore(legacy, backend="process") as restored:
            mine = state_arrays(pipeline.merged())
            theirs = state_arrays(restored.merged())
            assert all(np.array_equal(a, b)
                       for a, b in zip(mine, theirs))

    def test_legacy_pipeline_stale_format_rejected(self):
        legacy = _legacy_pipeline_blob({"format": 1}, [])
        with pytest.raises(StaleCheckpoint):
            ShardedPipeline.restore(legacy)
