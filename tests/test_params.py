"""Unit tests for the Figure 1 parameter formulas (core/params.py)."""

import numpy as np
import pytest

from repro.core.params import (DEFAULT_CONFIG, beta, count_sketch_rows,
                               independence_k, repetitions, sketch_size_m)


class TestIndependence:
    def test_paper_formula_p_half(self):
        # k = 10 * ceil(1/|0.5 - 1|) = 10 * 2 = 20
        assert independence_k(0.5, 0.1) == 20

    def test_paper_formula_p_15(self):
        # k = 10 * ceil(1/0.5) = 20
        assert independence_k(1.5, 0.1) == 20

    def test_k_grows_near_one(self):
        assert independence_k(1.1, 0.1) > independence_k(1.5, 0.1)

    def test_p1_uses_log_eps(self):
        assert independence_k(1.0, 1 / 16) >= 2 * 4  # k_const_p1 * log2(16)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            independence_k(2.0, 0.1)
        with pytest.raises(ValueError):
            independence_k(0.0, 0.1)


class TestSketchSize:
    def test_p_below_one_is_constant_in_eps(self):
        assert sketch_size_m(0.5, 0.5) == sketch_size_m(0.5, 0.01)

    def test_p_above_one_grows_as_eps_power(self):
        m_small = sketch_size_m(1.5, 0.5)
        m_large = sketch_size_m(1.5, 0.5 / 16)
        # eps^-(p-1) = eps^-0.5: 16x smaller eps => 4x larger m
        assert m_large == pytest.approx(4 * m_small, rel=0.2)

    def test_p1_grows_logarithmically(self):
        m1 = sketch_size_m(1.0, 0.5)
        m2 = sketch_size_m(1.0, 0.5**8)
        assert m2 == pytest.approx(8 * m1, rel=0.2)


class TestBeta:
    def test_p1_is_one(self):
        assert beta(1.0, 0.3) == pytest.approx(1.0)

    def test_relative_error_identity(self):
        """beta * eps^(1/p) = eps for every p — the Lemma 4 bookkeeping."""
        for p in (0.3, 0.5, 1.0, 1.4, 1.9):
            eps = 0.2
            assert beta(p, eps) * eps ** (1.0 / p) == pytest.approx(eps)

    def test_beta_above_one_for_small_p(self):
        assert beta(0.5, 0.2) > 1.0

    def test_beta_below_one_for_large_p(self):
        assert beta(1.5, 0.2) < 1.0


class TestRowsAndRepetitions:
    def test_rows_logarithmic(self):
        assert count_sketch_rows(1 << 20) \
            == pytest.approx(2 * 20, abs=2)

    def test_rows_odd(self):
        for n in (100, 1000, 10**6):
            assert count_sketch_rows(n) % 2 == 1

    def test_repetitions_scale(self):
        assert repetitions(0.25, 0.5) < repetitions(0.25, 0.01)
        assert repetitions(0.5, 0.1) < repetitions(0.05, 0.1)

    def test_repetitions_validation(self):
        with pytest.raises(ValueError):
            repetitions(0.0, 0.5)
        with pytest.raises(ValueError):
            repetitions(0.2, 1.5)
