"""Snapshot-isolation property suite (ISSUE 4 acceptance).

The law the serving layer sells: **a query answered at epoch E equals
the same query answered by an offline pipeline stopped at E**, no
matter how much ingestion happens after the snapshot was taken — and
the snapshot itself never moves while the stream runs on.

For every shardable registered type, on both execution backends:

1. ingest a prefix to epoch E and capture a snapshot;
2. keep ingesting (under the process backend the suffix is submitted
   but deliberately *not flushed*, so shard workers are genuinely
   chewing on it while the queries run);
3. answer the type's canonical queries from the snapshot and from an
   offline pipeline (same factory/seed) stopped at E;
4. the snapshot state must equal the offline merged state
   (byte-identical for integer/modular-state types, allclose for the
   documented float-state ones), the answers must agree, and the
   snapshot bytes must be unchanged by both the background ingestion
   and the queries themselves.

The process-backend subset lives in its own class so CI's worker lane
(hard ``timeout``) can address it directly.
"""

import numpy as np
import pytest

from repro.core.base import SampleResult
from repro.engine import ShardedPipeline, state_arrays
from repro.service import QueryRouter, ResultCache, Snapshot

from _engine_cases import (SHARDABLE, SHARDABLE_IDS, EngineCase,
                           random_turnstile, states_equal)

#: Canonical queries per structure type: enough to exercise every op
#: family the type supports (fixed args so answers are comparable).
CANONICAL_QUERIES = {
    "CountSketch": [("point", {"index": 3}), ("top", {"count": 3})],
    "CountMin": [("point", {"index": 3})],
    "AMSSketch": [("norm", {})],
    "StableSketch": [("norm", {})],
    "L0Estimator": [("norm", {"p": 0})],
    "SyndromeSparseRecovery": [("recover", {})],
    "IBLTSparseRecovery": [("recover", {})],
    "OneSparseDetector": [("recover", {})],
    "L0Sampler": [("sample_l0", {"count": 2}), ("support", {})],
    "LpSamplerRound": [("sample_lp", {})],
    "LpSampler": [("sample_lp", {})],
    "L1Sampler": [("sample_lp", {})],
    "CountSketchHeavyHitters": [("heavy_hitters", {}), ("norm", {})],
    "CountMedianHeavyHitters": [("heavy_hitters", {}),
                                ("norm", {"p": 1})],
    "FrequencyMomentEstimator": [("moment", {})],
}


def test_canonical_queries_cover_every_shardable_type():
    assert {case.name for case in SHARDABLE} <= set(CANONICAL_QUERIES)


def _answers_equal(mine, theirs, exact: bool) -> bool:
    """Structural equality over the algebra's result shapes."""
    if type(mine) is not type(theirs):
        return False
    if isinstance(mine, SampleResult):
        return (mine.failed == theirs.failed
                and mine.index == theirs.index
                and _answers_equal(mine.estimate, theirs.estimate, exact))
    if isinstance(mine, (tuple, list)):
        return (len(mine) == len(theirs)
                and all(_answers_equal(a, b, exact)
                        for a, b in zip(mine, theirs)))
    if isinstance(mine, np.ndarray):
        if exact:
            return bool(np.array_equal(mine, theirs))
        return bool(np.allclose(mine, theirs, rtol=1e-9, atol=1e-9))
    if isinstance(mine, float):
        if mine != mine and theirs != theirs:   # NaN == NaN here
            return True
        return (mine == theirs if exact
                else bool(np.isclose(mine, theirs, rtol=1e-9,
                                     atol=1e-9)))
    if mine is None or isinstance(mine, (int, str, bool)):
        return mine == theirs
    # Recovery results and other small result objects: compare their
    # public array/scalar attributes.
    mine_attrs = {k: v for k, v in vars(mine).items()
                  if not k.startswith("_")}
    theirs_attrs = {k: v for k, v in vars(theirs).items()
                    if not k.startswith("_")}
    return (set(mine_attrs) == set(theirs_attrs)
            and all(_answers_equal(v, theirs_attrs[k], exact)
                    for k, v in mine_attrs.items()))


def _isolation_trial(case: EngineCase, backend: str, seed: int,
                     universe: int = 96, shards: int = 3,
                     chunk: int = 32, length: int = 640):
    indices, deltas = random_turnstile(universe, length, seed)
    half = length // 2
    router = QueryRouter(cache=ResultCache(0))

    with ShardedPipeline(lambda: case.factory(universe, seed + 11),
                         shards=shards, chunk_size=chunk,
                         backend=backend) as live:
        live.ingest(indices[:half], deltas[:half])
        snapshot = Snapshot.capture(live)
        assert snapshot.epoch == half
        frozen = [np.array(a, copy=True)
                  for a in state_arrays(snapshot.structure)]

        # Ingestion continues while we query: under the process
        # backend these chunks are in flight on the workers right now
        # (no flush until the very end).
        live.ingest(indices[half:], deltas[half:])

        with ShardedPipeline(lambda: case.factory(universe, seed + 11),
                             shards=shards, chunk_size=chunk,
                             backend=backend) as offline:
            offline.ingest(indices[:half], deltas[:half])
            offline.flush()
            stopped = offline.merged()

            # The snapshot state IS the offline state at E.
            assert states_equal(snapshot.structure, stopped, case.exact)

            offline_snap = Snapshot(stopped, epoch=half)
            for op, args in CANONICAL_QUERIES[case.name]:
                mine = router.query(snapshot, op, **args)
                theirs = router.query(offline_snap, op, **args)
                assert _answers_equal(mine, theirs, case.exact), \
                    (case.name, op, mine, theirs)

        # Neither the background ingestion nor the queries moved the
        # snapshot's bytes.
        assert all(np.array_equal(a, b) for a, b in
                   zip(frozen, state_arrays(snapshot.structure)))

        # Sanity: the live pipeline really did advance past E.
        live.flush()
        assert live.updates_ingested == length


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("case", SHARDABLE, ids=SHARDABLE_IDS)
class TestSerialBackend:
    def test_query_at_epoch_matches_offline_stop(self, case, seed):
        _isolation_trial(case, "serial", seed)


#: The process subset trades sweep width for worker-process cost: a
#: representative type per family (vectorised leaf, modular-state
#: leaf, deep integer composite, float composite).
_PROCESS_CASES = [case for case in SHARDABLE
                  if case.name in ("CountSketch", "L0Estimator",
                                   "L0Sampler", "L1Sampler")]


@pytest.mark.parametrize("case", _PROCESS_CASES,
                         ids=[c.name for c in _PROCESS_CASES])
class TestProcessBackend:
    def test_query_at_epoch_matches_offline_stop(self, case):
        _isolation_trial(case, "process", seed=2)
