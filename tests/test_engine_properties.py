"""Property suite for the sharded engine (linearity made testable).

For every engine-registered structure:

* **Shard/merge linearity** — a K-shard :class:`ShardedPipeline` run
  over a random turnstile stream, merged with the binary tree, yields
  state equal to the single-instance run: byte-identical (exact array
  equality) for integer/modular-state structures, allclose at 1e-9 for
  the float-state ones (reassociation ulps only; see
  repro/engine/registry.py).
* **Checkpoint/restore/continue** — snapshotting mid-stream, restoring
  and finishing the stream is byte-identical to the uninterrupted run,
  for *every* structure including the float-state ones (restore is
  bit-exact and the remaining updates replay with identical batching).

Seeds, universes and chunk sizes are rotated per parametrised variant
so the guarantees do not hinge on one lucky configuration.
"""

import numpy as np
import pytest

from repro.core import L0Sampler
from repro.engine import (IncompatibleShards, ShardedPipeline, checkpoint,
                          is_exact, is_shardable, registered_types, restore,
                          state_arrays)

from _engine_cases import (CASES, CASE_IDS, SHARDABLE, SHARDABLE_IDS,
                           EngineCase, feed, random_turnstile, states_equal)

#: Rotated configurations: (variant seed, universe, shard count, chunk).
VARIANTS = [
    (0, 96, 2, 16),
    (1, 193, 3, 37),
    (2, 256, 4, 64),
]


def test_every_registered_type_has_a_case():
    """The suite must cover the whole registry — no silent gaps."""
    covered = {case.name for case in CASES}
    assert covered == set(registered_types())


def test_case_flags_mirror_registry():
    for case in CASES:
        built = case.factory(64, 1)
        assert is_exact(built) == case.exact, case.name
        assert is_shardable(built) == case.shardable, case.name


@pytest.mark.parametrize("variant", range(len(VARIANTS)))
@pytest.mark.parametrize("case", SHARDABLE, ids=SHARDABLE_IDS)
class TestShardMergeEqualsSingleStream:
    def test_merged_state_matches(self, case: EngineCase, variant: int):
        seed, universe, shards, chunk = VARIANTS[variant]
        length = 30 * chunk // 10
        partition = "hash" if variant % 2 == 0 else "round_robin"

        single = case.factory(universe, seed + 7)
        indices, deltas = random_turnstile(universe, length, seed)
        single.update_many(indices, deltas)

        pipeline = ShardedPipeline(lambda: case.factory(universe, seed + 7),
                                   shards=shards, partition=partition,
                                   chunk_size=chunk)
        pipeline.ingest(indices, deltas)
        merged = pipeline.merged()
        assert states_equal(single, merged, case.exact)

    def test_merge_is_nondestructive(self, case: EngineCase, variant: int):
        """merged() clones; the pipeline keeps ingesting afterwards."""
        seed, universe, shards, chunk = VARIANTS[variant]
        pipeline = ShardedPipeline(lambda: case.factory(universe, seed),
                                   shards=shards, chunk_size=chunk)
        indices, deltas = random_turnstile(universe, 2 * chunk, seed)
        pipeline.ingest(indices, deltas)
        before = [np.array(a, copy=True)
                  for a in state_arrays(pipeline.merged())]
        pipeline.merged().update_many(indices[:5], deltas[:5])
        after = state_arrays(pipeline.merged())
        assert all(np.array_equal(x, y) for x, y in zip(before, after))


@pytest.mark.parametrize("variant", range(len(VARIANTS)))
@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
class TestCheckpointRestoreContinue:
    def test_resumed_equals_uninterrupted(self, case: EngineCase,
                                          variant: int):
        seed, universe, _, _ = VARIANTS[variant]
        length = 120

        half = length // 2
        uninterrupted = case.factory(universe, seed + 3)
        feed(case, uninterrupted, universe, length, seed, parts=2)

        # Same workload halves, but with a snapshot/restore in between.
        resumed = case.factory(universe, seed + 3)
        if case.item_stream:
            from _engine_cases import random_items
            items = random_items(universe, length, seed)
            resumed.process_items(items[:half])
            resumed = restore(checkpoint(resumed))
            resumed.process_items(items[half:])
        else:
            indices, deltas = random_turnstile(universe, length, seed)
            resumed.update_many(indices[:half], deltas[:half])
            resumed = restore(checkpoint(resumed))
            resumed.update_many(indices[half:], deltas[half:])

        # byte-identical for every structure: restore is bit-exact and
        # the second half replays with the same update_many batching.
        assert states_equal(uninterrupted, resumed, exact=True)

    def test_resumed_queries_agree(self, case: EngineCase, variant: int):
        seed, universe, _, _ = VARIANTS[variant]
        obj = case.factory(universe, seed + 5)
        feed(case, obj, universe, 80, seed)
        twin = restore(checkpoint(obj))
        if hasattr(obj, "sample"):
            mine, theirs = obj.sample(), twin.sample()
            assert mine.failed == theirs.failed
            assert mine.index == theirs.index
        elif hasattr(obj, "heavy_hitters"):
            assert np.array_equal(obj.heavy_hitters(),
                                  twin.heavy_hitters())
        elif hasattr(obj, "result"):
            mine, theirs = obj.result(), twin.result()
            assert str(mine) == str(theirs)
        elif hasattr(obj, "recover"):
            mine, theirs = obj.recover(), twin.recover()
            assert mine.dense == theirs.dense
        elif hasattr(obj, "decide"):
            assert obj.decide() == twin.decide()
        elif hasattr(obj, "estimate_all"):
            assert np.array_equal(obj.estimate_all(), twin.estimate_all())
        elif hasattr(obj, "estimate_many"):
            everyone = np.arange(obj.universe, dtype=np.int64)
            assert np.array_equal(obj.estimate_many(everyone),
                                  twin.estimate_many(everyone))
        elif hasattr(obj, "norm_estimate"):
            assert obj.norm_estimate() == twin.norm_estimate()
        elif hasattr(obj, "l2_squared"):
            assert obj.l2_squared() == twin.l2_squared()
        else:
            assert obj.estimate() == twin.estimate()


class TestPipelineCheckpointResume:
    @pytest.mark.parametrize("case",
                             [c for c in SHARDABLE
                              if c.name in ("L0Sampler", "StableSketch",
                                            "LpSamplerRound",
                                            "CountMedianHeavyHitters")],
                             ids=lambda c: c.name)
    def test_pipeline_resume_byte_identical(self, case: EngineCase):
        """Pipeline-level snapshot/resume vs an uninterrupted pipeline:
        byte-identical merged state for float cases too, because both
        runs share chunk boundaries."""
        universe, shards, chunk = 128, 3, 32
        indices, deltas = random_turnstile(universe, 6 * chunk, 11)
        split = 4 * chunk  # resume on a chunk boundary

        plain = ShardedPipeline(lambda: case.factory(universe, 2),
                                shards=shards, chunk_size=chunk)
        plain.ingest(indices[:split], deltas[:split])
        plain.ingest(indices[split:], deltas[split:])

        paused = ShardedPipeline(lambda: case.factory(universe, 2),
                                 shards=shards, chunk_size=chunk)
        paused.ingest(indices[:split], deltas[:split])
        resumed = ShardedPipeline.restore(paused.checkpoint())
        assert resumed.updates_ingested == split
        resumed.ingest(indices[split:], deltas[split:])

        merged_plain, merged_resumed = plain.merged(), resumed.merged()
        arrays = zip(state_arrays(merged_plain),
                     state_arrays(merged_resumed))
        assert all(np.array_equal(a, b) for a, b in arrays)

    def test_round_robin_cursor_survives_restore(self):
        pipeline = ShardedPipeline(lambda: L0Sampler(64, seed=3),
                                   shards=3, partition="round_robin",
                                   chunk_size=8)
        indices, deltas = random_turnstile(64, 16, 4)  # 2 chunks
        pipeline.ingest(indices, deltas)
        resumed = ShardedPipeline.restore(pipeline.checkpoint())
        assert resumed._cursor == pipeline._cursor == 2 % 3


class TestShardValidation:
    def test_mismatched_factory_rejected(self):
        seeds = iter([1, 2, 3, 4])
        with pytest.raises(IncompatibleShards, match="seed"):
            ShardedPipeline(lambda: L0Sampler(64, seed=next(seeds)),
                            shards=2)

    def test_item_stream_wrappers_not_shardable(self):
        from repro.apps.duplicates import DuplicateFinder

        with pytest.raises(TypeError, match="not shardable"):
            ShardedPipeline(lambda: DuplicateFinder(64, seed=1,
                                                    sampler_rounds=2),
                            shards=2)

    def test_unregistered_structure_rejected(self):
        from repro.core import ReservoirSampler

        with pytest.raises(TypeError, match="not registered"):
            ShardedPipeline(lambda: ReservoirSampler(64, seed=1), shards=2)

    def test_bad_parameters_rejected(self):
        factory = lambda: L0Sampler(64, seed=1)  # noqa: E731
        with pytest.raises(ValueError):
            ShardedPipeline(factory, shards=0)
        with pytest.raises(ValueError):
            ShardedPipeline(factory, partition="modulo")
        with pytest.raises(ValueError):
            ShardedPipeline(factory, chunk_size=0)

    def test_empty_batch_is_a_noop(self):
        pipeline = ShardedPipeline(lambda: L0Sampler(64, seed=1), shards=2)
        assert pipeline.ingest([], []) == 0
        assert pipeline.updates_ingested == 0

    def test_scalar_ingest_promoted_to_length_one_batch(self):
        """Regression: a bare int passes `_as_int64` as a 0-d array,
        the shape check passes for two 0-d arrays, and the chunk loop
        then died slicing them (`IndexError: too many indices`)."""
        single = L0Sampler(64, seed=1)
        single.update_many([5], [3])
        pipeline = ShardedPipeline(lambda: L0Sampler(64, seed=1), shards=2)
        assert pipeline.ingest(5, 3) == 1
        assert pipeline.updates_ingested == 1
        assert states_equal(single, pipeline.merged(), exact=True)

    def test_zero_d_arrays_promoted_too(self):
        pipeline = ShardedPipeline(lambda: L0Sampler(64, seed=1), shards=2)
        assert pipeline.ingest(np.int64(7), np.array(2)) == 1
        assert pipeline.ingest(np.array(7.0), np.float64(-2)) == 1
        assert pipeline.updates_ingested == 2

    def test_scalar_against_vector_still_rejected(self):
        pipeline = ShardedPipeline(lambda: L0Sampler(64, seed=1), shards=2)
        with pytest.raises(ValueError, match="equal length"):
            pipeline.ingest(5, [1, 2])
        with pytest.raises(ValueError, match="equal length"):
            pipeline.ingest([1, 2], np.array(3))

    def test_fractional_deltas_rejected_not_truncated(self):
        """Silently flooring 0.5 -> 0 would diverge from the sketches'
        own float-accepting update path; the pipeline must refuse."""
        pipeline = ShardedPipeline(lambda: L0Sampler(64, seed=1), shards=2)
        with pytest.raises(ValueError, match="integral"):
            pipeline.ingest([1, 2], [0.5, -1.7])
        # integral floats are fine (a common producer artefact)
        assert pipeline.ingest([1, 2], [2.0, -1.0]) == 2


@pytest.mark.parametrize("shards", [1, 2, 3, 4], ids=lambda k: f"K{k}")
class TestMergedIsIdempotent:
    """merged() must be a pure read: repeatable, and harmless to the
    pipeline's own shard state (regression for satellite audit — the
    first fold level must clone whenever the pool shares state)."""

    FACTORY = staticmethod(lambda: L0Sampler(96, delta=0.2, seed=6))

    def test_two_consecutive_merged_calls_identical(self, shards):
        pipeline = ShardedPipeline(self.FACTORY, shards=shards,
                                   chunk_size=16)
        indices, deltas = random_turnstile(96, 64, 15)
        pipeline.ingest(indices, deltas)
        shard_state_before = [
            [np.array(a, copy=True) for a in state_arrays(shard)]
            for shard in pipeline.shard_instances]
        first = [np.array(a, copy=True)
                 for a in state_arrays(pipeline.merged())]
        second = state_arrays(pipeline.merged())
        assert all(np.array_equal(a, b) for a, b in zip(first, second))
        for before, shard in zip(shard_state_before,
                                 pipeline.shard_instances):
            assert all(np.array_equal(a, b)
                       for a, b in zip(before, state_arrays(shard)))

    def test_merged_then_more_ingest_stays_correct(self, shards):
        single = self.FACTORY()
        pipeline = ShardedPipeline(self.FACTORY, shards=shards,
                                   chunk_size=16)
        indices, deltas = random_turnstile(96, 64, 16)
        single.update_many(indices, deltas)
        pipeline.ingest(indices[:32], deltas[:32])
        pipeline.merged()                     # must not corrupt shards
        pipeline.ingest(indices[32:], deltas[32:])
        assert states_equal(single, pipeline.merged(), exact=True)


class TestRoundRobinCursorDeterminism:
    """A pipeline checkpointed mid-rotation must resume routing at the
    next shard in the rotation — compared via per-shard update counts
    against an uninterrupted run (a cursor that silently reset to 0
    would redistribute the remaining chunks and fail this)."""

    @staticmethod
    def _factory():
        from repro.sketch import CountMin

        return lambda: CountMin(64, buckets=8, rows=3, seed=2)

    @staticmethod
    def _per_shard_counts(pipeline):
        # deltas are all 1, so one CountMin row sums to the number of
        # updates that shard absorbed
        return [int(state_arrays(shard)[0][0].sum())
                for shard in pipeline.shard_instances]

    def test_resumed_rotation_matches_uninterrupted(self):
        shards, chunk, chunks = 3, 8, 7
        indices = np.arange(chunk * chunks, dtype=np.int64) % 64
        deltas = np.ones(chunk * chunks, dtype=np.int64)
        split = 2 * chunk                     # cursor mid-rotation: 2

        plain = ShardedPipeline(self._factory(), shards=shards,
                                partition="round_robin", chunk_size=chunk)
        plain.ingest(indices, deltas)

        paused = ShardedPipeline(self._factory(), shards=shards,
                                 partition="round_robin", chunk_size=chunk)
        paused.ingest(indices[:split], deltas[:split])
        assert paused._cursor == 2
        resumed = ShardedPipeline.restore(paused.checkpoint())
        assert resumed._cursor == 2
        resumed.ingest(indices[split:], deltas[split:])

        assert (self._per_shard_counts(resumed)
                == self._per_shard_counts(plain)
                == [3 * chunk, 2 * chunk, 2 * chunk])
        assert resumed._cursor == plain._cursor == chunks % shards

    def test_reshard_restarts_the_rotation_at_shard_zero(self):
        shards, chunk = 3, 8
        indices = np.arange(4 * chunk, dtype=np.int64) % 64
        deltas = np.ones(4 * chunk, dtype=np.int64)
        pipeline = ShardedPipeline(self._factory(), shards=shards,
                                   partition="round_robin",
                                   chunk_size=chunk)
        pipeline.ingest(indices, deltas)      # cursor now 4 % 3 == 1
        pipeline.reshard(2)
        assert pipeline._cursor == 0
        pipeline.ingest(indices, deltas)      # 4 chunks over 2 shards
        counts = self._per_shard_counts(pipeline)
        # shard 0 holds the folded pre-reshard state (4 chunks) plus
        # chunks 0 and 2 of the new rotation; shard 1 chunks 1 and 3
        assert counts == [4 * chunk + 2 * chunk, 2 * chunk]


class TestMergedSamplesAgree:
    def test_l0_sampler_output_identical(self):
        """End to end: the merged sampler *samples* exactly like the
        single-stream sampler (state equality carried to the output)."""
        universe = 256
        single = L0Sampler(universe, delta=0.2, seed=21)
        pipeline = ShardedPipeline(lambda: L0Sampler(universe, delta=0.2,
                                                     seed=21),
                                   shards=4, chunk_size=32)
        indices, deltas = random_turnstile(universe, 200, 9)
        single.update_many(indices, deltas)
        pipeline.ingest(indices, deltas)
        mine, theirs = single.sample(), pipeline.merged().sample()
        assert mine.failed == theirs.failed
        if not mine.failed:
            assert mine.index == theirs.index
            assert mine.estimate == theirs.estimate
