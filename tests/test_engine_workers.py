"""The execution-backend layer: process workers vs the serial reference.

The load-bearing property: for every shardable registered type, a
``backend="process"`` pipeline produces *byte-identical* merged state
to the ``backend="serial"`` pipeline (same routing, same chunk
boundaries, bit-exact checkpoint transport — even float state sees the
identical operation sequence), which in turn equals the
single-instance run exactly for integer-state structures.  Plus the
lifecycle contract: checkpoints interoperate across backends, close()
is graceful and idempotent, and a dead worker raises
:class:`WorkerCrashed` instead of hanging.
"""

import numpy as np
import pytest

from repro.core import L0Sampler
from repro.engine import (IncompatibleShards, ShardedPipeline,
                          WorkerCrashed, checkpoint, state_arrays)

from _engine_cases import (SHARDABLE, SHARDABLE_IDS, EngineCase,
                           random_turnstile, states_equal)


def _pipeline(case: EngineCase, backend: str, universe=128, shards=3,
              chunk=32, seed=5, partition="hash") -> ShardedPipeline:
    return ShardedPipeline(lambda: case.factory(universe, seed),
                           shards=shards, partition=partition,
                           chunk_size=chunk, backend=backend)


@pytest.mark.parametrize("case", SHARDABLE, ids=SHARDABLE_IDS)
class TestProcessMatchesSerial:
    def test_merged_state_identical_across_backends(self, case):
        """process == serial == single instance, for every shardable
        registered type (byte-identical between backends; exactness vs
        the single run per the registry's own claim)."""
        universe, chunk = 128, 32
        indices, deltas = random_turnstile(universe, 4 * chunk, 11)

        single = case.factory(universe, 5)
        single.update_many(indices, deltas)

        serial = _pipeline(case, "serial")
        serial.ingest(indices, deltas)

        with _pipeline(case, "process") as process:
            process.ingest(indices, deltas)
            merged_process = process.merged()

        merged_serial = serial.merged()
        # Same routing, same chunks, bit-exact transport: the backends
        # must agree to the last bit even for float-state structures.
        assert states_equal(merged_serial, merged_process, exact=True)
        assert states_equal(single, merged_process, case.exact)

    def test_checkpoints_interoperate_across_backends(self, case):
        """A blob written under one backend resumes under the other and
        finishes byte-identical to the uninterrupted serial run."""
        universe, chunk = 128, 32
        indices, deltas = random_turnstile(universe, 4 * chunk, 3)
        split = 2 * chunk

        plain = _pipeline(case, "serial", seed=9)
        plain.ingest(indices, deltas)

        with _pipeline(case, "process", seed=9) as first:
            first.ingest(indices[:split], deltas[:split])
            blob = first.checkpoint()
        resumed = ShardedPipeline.restore(blob, backend="serial")
        assert resumed.backend == "serial"
        assert resumed.updates_ingested == split
        resumed.ingest(indices[split:], deltas[split:])
        assert states_equal(plain.merged(), resumed.merged(), exact=True)

        serial_start = _pipeline(case, "serial", seed=9)
        serial_start.ingest(indices[:split], deltas[:split])
        with ShardedPipeline.restore(serial_start.checkpoint(),
                                     backend="process") as other_way:
            assert other_way.backend == "process"
            other_way.ingest(indices[split:], deltas[split:])
            assert states_equal(plain.merged(), other_way.merged(),
                                exact=True)


class TestLifecycle:
    FACTORY = staticmethod(lambda: L0Sampler(64, delta=0.2, seed=1))

    def test_context_manager_closes(self):
        with ShardedPipeline(self.FACTORY, shards=2,
                             backend="process") as pipeline:
            pipeline.ingest([1, 2, 3], [1, -1, 2])
        with pytest.raises(RuntimeError, match="closed"):
            pipeline.ingest([1], [1])
        with pytest.raises(RuntimeError, match="closed"):
            pipeline.checkpoint()

    def test_close_is_idempotent_and_workers_exit(self):
        pipeline = ShardedPipeline(self.FACTORY, shards=2,
                                   backend="process")
        workers = [worker.process for worker in pipeline._pool._workers]
        pipeline.close()
        pipeline.close()
        assert all(not process.is_alive() for process in workers)
        assert all(process.exitcode == 0 for process in workers)

    def test_close_with_backlogged_queue_still_graceful(self):
        """close() right after a large ingest: the workers drain their
        backlog, receive the stop message, and exit cleanly — no
        SIGTERM for a merely busy worker."""
        indices, deltas = random_turnstile(64, 6000, 13)
        pipeline = ShardedPipeline(self.FACTORY, shards=2, chunk_size=64,
                                   backend="process")
        workers = [worker.process for worker in pipeline._pool._workers]
        pipeline.ingest(indices, deltas)   # no flush: queues backlogged
        pipeline.close()
        assert all(process.exitcode == 0 for process in workers)

    def test_serial_close_also_finalizes(self):
        pipeline = ShardedPipeline(self.FACTORY, shards=2)
        pipeline.close()
        with pytest.raises(RuntimeError, match="closed"):
            pipeline.merged()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ShardedPipeline(self.FACTORY, shards=2, backend="threads")
        blob = ShardedPipeline(self.FACTORY, shards=2).checkpoint()
        with pytest.raises(ValueError, match="backend"):
            ShardedPipeline.restore(blob, backend="threads")

    def test_mismatched_shard_blob_rejected_under_both_backends(self):
        """A pipeline blob whose shard blobs carry different maps must
        be rejected at restore time — under the process backend this
        happens from the blob headers alone, before workers touch it."""
        from repro.wire import KIND_PIPELINE, decode_frame, encode_frame

        pipeline = ShardedPipeline(self.FACTORY, shards=2)
        blob = pipeline.checkpoint()
        alien = checkpoint(L0Sampler(64, delta=0.2, seed=99))
        frame = decode_frame(blob, expect_kind=KIND_PIPELINE)
        tampered = encode_frame(
            KIND_PIPELINE, frame.header,
            [frame.sections[0], np.frombuffer(alien, dtype=np.uint8)])
        for backend in ("serial", "process"):
            with pytest.raises(IncompatibleShards, match="seed|map"):
                ShardedPipeline.restore(tampered, backend=backend)

    def test_flush_is_a_barrier(self):
        indices, deltas = random_turnstile(64, 400, 7)
        single = L0Sampler(64, delta=0.2, seed=1)
        single.update_many(indices, deltas)
        with ShardedPipeline(self.FACTORY, shards=2, chunk_size=16,
                             backend="process") as pipeline:
            pipeline.ingest(indices, deltas)
            pipeline.flush()
            # post-flush snapshots must already hold every update
            merged = pipeline.merged()
            assert states_equal(single, merged, exact=True)


@pytest.mark.parametrize("shards", [2, 3], ids=lambda k: f"K{k}")
class TestMergedIsIdempotentUnderProcessBackend:
    """merged() consumes worker snapshot *copies*; two consecutive
    calls, and a merged() followed by more ingestion, must leave the
    workers' live state untouched (regression companion to the serial
    suite in test_engine_properties.py)."""

    FACTORY = staticmethod(lambda: L0Sampler(96, delta=0.2, seed=6))

    def test_repeated_merged_and_continue(self, shards):
        single = self.FACTORY()
        indices, deltas = random_turnstile(96, 64, 21)
        single.update_many(indices, deltas)
        with ShardedPipeline(self.FACTORY, shards=shards, chunk_size=16,
                             backend="process") as pipeline:
            pipeline.ingest(indices[:32], deltas[:32])
            first = state_arrays(pipeline.merged())
            second = state_arrays(pipeline.merged())
            assert all(np.array_equal(a, b)
                       for a, b in zip(first, second))
            pipeline.ingest(indices[32:], deltas[32:])
            merged = pipeline.merged()
        assert states_equal(single, merged, exact=True)


class TestWorkerCrash:
    FACTORY = staticmethod(lambda: L0Sampler(64, delta=0.2, seed=1))

    def test_killed_worker_raises_not_hangs(self):
        pipeline = ShardedPipeline(self.FACTORY, shards=2,
                                   backend="process")
        try:
            pipeline.ingest([1, 2, 3, 4], [1, 1, 1, 1])
            pipeline.flush()
            victim = pipeline._pool._workers[0].process
            victim.terminate()
            victim.join(10)
            with pytest.raises(WorkerCrashed, match="died"):
                pipeline.flush()
            # the pipeline is poisoned: no checkpoint can be taken that
            # would misreport the dead worker's lost state
            with pytest.raises(WorkerCrashed):
                pipeline.checkpoint()
            with pytest.raises(WorkerCrashed):
                pipeline.ingest([1], [1])
        finally:
            pipeline.close()       # close after a crash must not raise

    def test_worker_exception_ships_the_traceback(self):
        pipeline = ShardedPipeline(self.FACTORY, shards=2,
                                   backend="process")
        try:
            # mismatched shapes blow up inside the worker's update_many
            pipeline._pool._workers[0].inbox.put(
                ("ingest", np.arange(4), np.arange(3)))
            with pytest.raises(WorkerCrashed, match="Traceback"):
                pipeline.flush()
        finally:
            pipeline.close()


class TestUpdateCounterHonesty:
    """`updates_ingested` advances per applied chunk, never past a
    failure — so checkpoints after a partial ingest tell the truth."""

    def test_counter_stops_at_last_complete_chunk(self):
        # round_robin: exactly one submit per chunk, so the failure
        # point is deterministic — chunk 1 applies, chunk 2 raises
        pipeline = ShardedPipeline(lambda: L0Sampler(64, delta=0.2,
                                                     seed=1),
                                   shards=2, chunk_size=4,
                                   partition="round_robin")
        calls = {"n": 0}
        original = pipeline._pool.submit

        def failing_submit(shard, idx, dlt):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("simulated mid-batch failure")
            original(shard, idx, dlt)

        pipeline._pool.submit = failing_submit
        with pytest.raises(RuntimeError, match="mid-batch"):
            pipeline.ingest(np.arange(8), np.ones(8, dtype=np.int64))
        # only the chunk that fully applied is counted ...
        assert pipeline.updates_ingested == 4
        # ... and the pipeline is poisoned: the failed chunk may have
        # partially mutated a shard, so no checkpoint may claim it
        with pytest.raises(RuntimeError, match="inconsistent"):
            pipeline.checkpoint()

    def test_partial_hash_fanout_poisons_checkpoint(self):
        """Under hash partitioning one chunk fans out to K shards; if
        that fails partway some shards hold the chunk and others do
        not — checkpoint() must refuse rather than snapshot the lie."""
        pipeline = ShardedPipeline(lambda: L0Sampler(64, delta=0.2,
                                                     seed=1),
                                   shards=2, chunk_size=8,
                                   partition="hash")
        original = pipeline._pool.submit
        calls = {"n": 0}

        def failing_submit(shard, idx, dlt):
            calls["n"] += 1
            if calls["n"] >= 2:    # second shard of the same chunk
                raise RuntimeError("fan-out interrupted")
            original(shard, idx, dlt)

        pipeline._pool.submit = failing_submit
        # indices 0..7 mix onto both shards, so the chunk fans out twice
        with pytest.raises(RuntimeError, match="interrupted"):
            pipeline.ingest(np.arange(8), np.ones(8, dtype=np.int64))
        assert calls["n"] == 2
        assert pipeline.updates_ingested == 0
        with pytest.raises(RuntimeError, match="inconsistent"):
            pipeline.checkpoint()
        # merged() and shard_instances would serve the same torn
        # state; further ingestion could never repair it
        with pytest.raises(RuntimeError, match="inconsistent"):
            pipeline.merged()
        with pytest.raises(RuntimeError, match="inconsistent"):
            pipeline.shard_instances
        with pytest.raises(RuntimeError, match="inconsistent"):
            pipeline.ingest([1], [1])
        pipeline._pool.submit = original
        with pytest.raises(RuntimeError, match="inconsistent"):
            pipeline.checkpoint()  # poisoning is permanent

    def test_pre_failure_checkpoint_remains_an_honest_resume_point(self):
        pipeline = ShardedPipeline(lambda: L0Sampler(64, delta=0.2,
                                                     seed=1),
                                   shards=1, chunk_size=4)
        pipeline.ingest(np.arange(4), np.ones(4, dtype=np.int64))
        blob = pipeline.checkpoint()   # clean chunk boundary

        def failing_submit(shard, idx, dlt):
            raise RuntimeError("boom")

        pipeline._pool.submit = failing_submit
        with pytest.raises(RuntimeError, match="boom"):
            pipeline.ingest(np.arange(8), np.ones(8, dtype=np.int64))
        assert pipeline.updates_ingested == 4   # counter did not lie
        with pytest.raises(RuntimeError, match="inconsistent"):
            pipeline.checkpoint()               # poisoned from here on
        # the snapshot taken before the failure restores and resumes
        restored = ShardedPipeline.restore(blob)
        assert restored.updates_ingested == 4
        restored.ingest(np.arange(4), np.ones(4, dtype=np.int64))
        assert restored.updates_ingested == 8


class TestDeltaRangeGuards:
    """uint64 >= 2^63 passed the old ``kind in 'iu'`` check and wrapped
    negative under ``astype(np.int64)``; now it raises."""

    FACTORY = staticmethod(lambda: L0Sampler(64, delta=0.2, seed=1))

    def test_uint64_delta_overflow_rejected(self):
        pipeline = ShardedPipeline(self.FACTORY, shards=2)
        huge = np.array([1, 2 ** 63], dtype=np.uint64)
        with pytest.raises(ValueError, match="wrap"):
            pipeline.ingest([1, 2], huge)
        assert pipeline.updates_ingested == 0

    def test_uint64_index_overflow_rejected(self):
        pipeline = ShardedPipeline(self.FACTORY, shards=2)
        huge = np.array([1, 2 ** 63 + 5], dtype=np.uint64)
        with pytest.raises(ValueError, match="wrap"):
            pipeline.ingest(huge, [1, 1])

    def test_small_uint64_still_accepted(self):
        pipeline = ShardedPipeline(self.FACTORY, shards=2)
        small = np.array([3, 7], dtype=np.uint64)
        assert pipeline.ingest(small, small) == 2
        assert pipeline.updates_ingested == 2

    def test_stream_path_cannot_smuggle_wrapped_deltas(self):
        """`ingest_stream` trusts UpdateStream's arrays, so the wrap
        guard must live in UpdateStream itself — a uint64 >= 2^63
        delta is rejected at stream construction, closing the same
        hole on the second ingestion entry point."""
        from repro.streams.model import UpdateStream

        with pytest.raises(ValueError, match="wrap"):
            UpdateStream(64, np.array([5], dtype=np.uint64),
                         np.array([2 ** 63], dtype=np.uint64))
        with pytest.raises(ValueError, match="int64"):
            UpdateStream(64, np.array([5]), np.array([2.0 ** 63]))
        # in-range uint64 still constructs
        stream = UpdateStream(64, np.array([5], dtype=np.uint64),
                              np.array([3], dtype=np.uint64))
        pipeline = ShardedPipeline(self.FACTORY, shards=2, chunk_size=4)
        assert pipeline.ingest_stream(stream) == 1

    def test_huge_float_delta_rejected(self):
        pipeline = ShardedPipeline(self.FACTORY, shards=2)
        with pytest.raises(ValueError, match="int64"):
            pipeline.ingest([1], np.array([1e30]))

    def test_fractional_float_indices_rejected(self):
        """Truncating 1.5 -> coordinate 1 silently is the same
        corruption class as the delta guards close; indices get the
        integral check too."""
        pipeline = ShardedPipeline(self.FACTORY, shards=2)
        with pytest.raises(ValueError, match="integral"):
            pipeline.ingest(np.array([1.5]), [1])
        # integral float indices remain fine (producer artefact)
        assert pipeline.ingest(np.array([2.0, 3.0]), [1, 1]) == 2

    def test_float_exactly_2_63_rejected(self):
        """float64 2^63 slips past a `<= iinfo(int64).max` comparison
        (the bound promotes to float 2^63) and wraps to INT64_MIN
        under astype; the guard must be a strict `< 2^63`."""
        pipeline = ShardedPipeline(self.FACTORY, shards=2)
        with pytest.raises(ValueError, match="int64"):
            pipeline.ingest([1], np.array([2.0 ** 63]))
        with pytest.raises(ValueError, match="int64"):
            pipeline.ingest(np.array([2.0 ** 63]), [1])
