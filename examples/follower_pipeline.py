"""Warm standby: a follower tails a delta stream and takes over.

The replication loop the wire layer enables: a leader pipeline
ingests a turnstile stream and, instead of shipping a full checkpoint
after every batch, appends *delta* frames to a stream file — sketches
are linear, so the difference between two epochs is itself a sketch
of the interim updates, and at low churn it compresses to a small
fraction of the full state.  A ``FollowerPipeline`` on the other side
tails that file, applies whatever complete frames have landed, and
stays byte-identical to the leader at every acknowledged epoch.

Acts:

1.  the leader bootstraps a follower with one full checkpoint,
2.  four more batches stream through; each appends one delta frame
    (the file is the replication log — a mid-write partial tail is
    tolerated, corruption is loud),
3.  the "leader fails": the follower promotes itself onto a fresh
    sharded pipeline, answers a query, and keeps ingesting.

Run:  python examples/follower_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.apps.heavy_hitters import CountMedianHeavyHitters
from repro.engine import FollowerPipeline, ShardedPipeline
from repro.engine import checkpoint as snapshot

UNIVERSE = 1 << 12
SEED = 2011
BATCHES = 5
BATCH = 8_000


def factory():
    return CountMedianHeavyHitters(UNIVERSE, phi=0.05, seed=SEED,
                                   strict=False)


def workload():
    rng = np.random.default_rng(SEED)
    indices = rng.integers(0, UNIVERSE, size=BATCHES * BATCH,
                           dtype=np.int64)
    deltas = rng.integers(1, 6, size=BATCHES * BATCH, dtype=np.int64)
    hot = rng.choice(UNIVERSE, size=3, replace=False)
    mask = rng.random(BATCHES * BATCH) < 0.3
    indices[mask] = rng.choice(hot, size=int(mask.sum()))
    return indices, deltas


def main():
    indices, deltas = workload()
    stream = Path(tempfile.mkstemp(suffix=".wire")[1])

    leader = ShardedPipeline(factory, shards=4, chunk_size=2048)
    leader.ingest(indices[:BATCH], deltas[:BATCH])
    base = leader.checkpoint(compress="zlib")
    stream.write_bytes(base)
    print(f"act 1: leader at epoch {leader.updates_ingested}, "
          f"follower bootstrapped from a {len(base):,}-byte full "
          f"checkpoint")
    follower = FollowerPipeline(base)
    offset = len(base)

    total_delta = 0
    for b in range(1, BATCHES):
        epoch = leader.updates_ingested
        lo, hi = b * BATCH, (b + 1) * BATCH
        leader.ingest(indices[lo:hi], deltas[lo:hi])
        frame = leader.checkpoint(since=epoch)      # zlib by default
        with open(stream, "ab") as log:
            log.write(frame)
        total_delta += len(frame)
        applied, offset = follower.follow_file(stream, offset)
        identical = (snapshot(follower.merged())
                     == snapshot(leader.merged()))
        print(f"act 2.{b}: delta {len(frame):,} bytes -> follower "
              f"applied {applied}, epoch {follower.epoch}, "
              f"byte-identical: {identical}")
        assert identical
    print(f"act 2: whole chain {total_delta:,} bytes vs "
          f"{len(base):,}-byte base "
          f"({total_delta / len(base):.0%})")

    leader_hh = leader.merged().heavy_hitters()
    leader.close()                                  # "leader fails"
    promoted = follower.promote(shards=4)
    hh = promoted.merged().heavy_hitters()
    print(f"act 3: follower promoted at epoch "
          f"{promoted.updates_ingested}; heavy hitters "
          f"{hh.tolist()} (leader had {leader_hh.tolist()})")
    assert np.array_equal(hh, leader_hh)

    promoted.ingest(indices[:100], deltas[:100])    # serving resumes
    print(f"act 3: promoted pipeline kept ingesting -> epoch "
          f"{promoted.updates_ingested}")
    promoted.close()
    stream.unlink()


if __name__ == "__main__":
    main()
