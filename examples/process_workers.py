"""Multiprocess shard workers: same stream, same state, real cores.

The engine separates *routing* (which shard sees which coordinate)
from *execution* (where that shard's ``update_many`` runs).  This
script drives the same count-sketch workload through both execution
backends and verifies, counter by counter, that they agree:

1. ``backend="serial"``  — all K shards in this process (reference),
2. ``backend="process"`` — one worker process per shard, fed routed
   chunks over bounded queues, shipping state back as checkpoint
   blobs,
3. a cross-backend handoff: checkpoint under the process backend,
   restore serial (the wire format is backend-agnostic),
4. the merged states must be byte-identical to the single-instance
   run — linearity does not care where the addition happened.

Run:  python examples/process_workers.py
"""

import time

import numpy as np

from repro.engine import ShardedPipeline, state_arrays
from repro.sketch import CountSketch

UNIVERSE = 1 << 12
UPDATES = 60_000
SHARDS = 4
CHUNK = 4096
SEED = 11


def factory():
    return CountSketch(UNIVERSE, m=16, rows=7, seed=SEED)


def main():
    rng = np.random.default_rng(SEED)
    indices = rng.integers(0, UNIVERSE, UPDATES, dtype=np.int64)
    deltas = rng.integers(-4, 9, UPDATES, dtype=np.int64)
    deltas[deltas == 0] = 1

    print("=== reference: one instance, whole stream ===")
    single = factory()
    single.update_many(indices, deltas)
    print(f"{UPDATES} updates over n={UNIVERSE}")

    results = {}
    for backend in ("serial", "process"):
        print(f"\n=== backend={backend}, K={SHARDS} shards ===")
        with ShardedPipeline(factory, shards=SHARDS, chunk_size=CHUNK,
                             backend=backend) as pipeline:
            start = time.perf_counter()
            pipeline.ingest(indices, deltas)
            pipeline.flush()      # barrier: queued work must finish
            elapsed = time.perf_counter() - start
            results[backend] = pipeline.merged()
            if backend == "process":
                blob = pipeline.checkpoint()
        print(f"ingested in {elapsed:.3f}s "
              f"= {UPDATES / elapsed:,.0f} updates/s")

    print("\n=== cross-backend handoff ===")
    resumed = ShardedPipeline.restore(blob, backend="serial")
    print(f"process-backend checkpoint ({len(blob) // 1024} KiB) "
          f"restored serial; updates_ingested={resumed.updates_ingested}")
    results["handoff"] = resumed.merged()

    print("\n=== verdict ===")
    for name, merged in results.items():
        identical = all(np.array_equal(a, b) for a, b in
                        zip(state_arrays(single), state_arrays(merged)))
        print(f"{name:>8}: merged state byte-identical to the "
              f"single-instance run: {identical}")
        assert identical


if __name__ == "__main__":
    main()
