"""Elastic resharding: grow a live pipeline 2 -> 8 shards, shrink to 1.

The serving scenario the engine is built for: a pipeline starts small,
traffic ramps up, and capacity has to follow — *without* replaying the
stream or going dark.  Every structure in this library is a linear map
of the frequency vector, so shard state folds down to one structure
(the merge tree) and re-seats onto any shard count; the merged result
never changes.

This script drives one L0-sampler pipeline through three traffic
phases with a topology change between each:

1.  K=2, round-robin   — quiet start
2.  reshard to K=8, hash — traffic spike: grow and re-route, live
3.  reshard to K=1      — traffic gone: fold everything back down

and verifies after every phase that the pipeline's merged state is
byte-identical to a single instance fed the same prefix.  A fourth act
restores the K=8 checkpoint straight into a K=4 pipeline
(``restore(blob, shards=4)``) — elastic K through the wire format.

Run:  python examples/elastic_resharding.py
"""

import time

import numpy as np

from repro.core import L0Sampler
from repro.engine import ShardedPipeline, state_arrays

UNIVERSE = 1 << 14
SEED = 2011
PHASES = [          # (label, shard count after reshard, partition, updates)
    ("quiet start", None, None, 30_000),
    ("traffic spike: grow", 8, "hash", 120_000),
    ("traffic gone: shrink", 1, None, 15_000),
]


def factory():
    return L0Sampler(UNIVERSE, delta=0.1, seed=SEED)


def byte_identical(single, pipeline) -> bool:
    return all(np.array_equal(a, b) for a, b in
               zip(state_arrays(single), state_arrays(pipeline.merged())))


def main():
    rng = np.random.default_rng(SEED)
    single = factory()
    pipeline = ShardedPipeline(factory, shards=2, partition="round_robin",
                               chunk_size=4096)
    blob_at_8 = None

    for label, new_k, new_partition, updates in PHASES:
        if new_k is not None:
            start = time.perf_counter()
            pipeline.reshard(new_k, partition=new_partition)
            reshard_ms = (time.perf_counter() - start) * 1e3
            print(f"\n=== {label}: resharded to K={pipeline.shards} "
                  f"({pipeline.partition}) in {reshard_ms:.1f} ms ===")
        else:
            print(f"=== {label}: K={pipeline.shards} "
                  f"({pipeline.partition}) ===")
        indices = rng.integers(0, UNIVERSE, updates, dtype=np.int64)
        deltas = rng.integers(-3, 8, updates, dtype=np.int64)
        deltas[deltas == 0] = 1
        start = time.perf_counter()
        pipeline.ingest(indices, deltas)
        elapsed = time.perf_counter() - start
        single.update_many(indices, deltas)
        ok = byte_identical(single, pipeline)
        print(f"{updates:,} updates at {updates / elapsed:,.0f}/s; "
              f"merged state byte-identical to single instance: {ok}")
        assert ok
        if pipeline.shards == 8:
            blob_at_8 = pipeline.checkpoint()
            print(f"checkpoint taken at K=8 ({len(blob_at_8) // 1024} KiB)")

    print("\n=== cross-K restore: the K=8 checkpoint boots at K=4 ===")
    resumed = ShardedPipeline.restore(blob_at_8, shards=4)
    print(f"restored with shards=4: K={resumed.shards}, "
          f"updates_ingested={resumed.updates_ingested:,}")

    print("\n=== the merged sampler still answers ===")
    result = pipeline.merged().sample()
    if result.failed:
        print(f"sample: FAIL ({result.reason})")
    else:
        print(f"sample: i={result.index}  x_i={result.estimate:.0f}")


if __name__ == "__main__":
    main()
