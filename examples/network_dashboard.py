"""A networked monitoring stack: daemon, dashboards, warm standby.

Everything PR 8 added, in one process:

1. a **daemon** (:class:`ServerThread` around a :class:`QueryService`
   serving a count-median heavy-hitters structure) on an ephemeral
   localhost port — the exact stack ``repro daemon --listen`` runs;
2. an **ingest feed** pushing skewed turnstile batches over the
   socket, each ack naming its position in the server's epoch order;
3. two **dashboard clients** asking different questions concurrently —
   one tracks the valid heavy-hitters set, one tracks the L1 mass and
   service stats;
4. a **warm standby** (:class:`SocketFollower`) subscribed to the
   delta stream, which catches up, verifies it is byte-identical to
   the leader's over-the-wire checkpoint and *promotes* — finishing
   the failover story locally, no second process needed.

Run:  python examples/network_dashboard.py
"""

import threading

import numpy as np

from repro.engine import ShardedPipeline
from repro.engine import checkpoint as snapshot_structure
from repro.net import ReproClient, ServerThread, SocketFollower
from repro.service import QueryService
from repro.apps.heavy_hitters import CountMedianHeavyHitters

UNIVERSE = 2048
SHARDS = 2
BATCHES = 6
BATCH = 2_000
SEED = 2011


def skewed_batches():
    """A turnstile stream with three planted heavy coordinates."""
    rng = np.random.default_rng(SEED)
    hot = rng.choice(UNIVERSE, size=3, replace=False)
    for _ in range(BATCHES):
        indices = rng.integers(0, UNIVERSE, size=BATCH, dtype=np.int64)
        deltas = rng.integers(-2, 5, size=BATCH, dtype=np.int64)
        mask = rng.random(BATCH) < 0.25
        indices[mask] = rng.choice(hot, size=int(mask.sum()))
        deltas[mask] = np.abs(deltas[mask]) + 2
        yield indices, deltas


def dashboard(host, port, name, op, kwargs, lines):
    """One dashboard client: re-ask its question as epochs advance."""
    with ReproClient(host, port) as client:
        seen = -1
        while seen < BATCHES * BATCH:
            answer = client.query(op, **kwargs)
            if answer.epoch != seen:
                seen = answer.epoch
                lines.append(f"  [{name}] epoch {seen:>6,}: "
                             f"{_brief(answer.result)}")


def _brief(result):
    text = str(result)
    return text if len(text) <= 64 else text[:61] + "..."


def main():
    pipeline = ShardedPipeline(
        lambda: CountMedianHeavyHitters(UNIVERSE, phi=0.05, seed=SEED),
        shards=SHARDS, chunk_size=1024)
    print("=== the daemon ===")
    with QueryService(pipeline, refresh_every=1, keep=8,
                      cache_size=64) as service, \
            ServerThread(service) as server:
        print(f"serving CountMedianHeavyHitters x {SHARDS} shards on "
              f"{server.host}:{server.port}")

        print("\n=== feed + two dashboards + one standby ===")
        hh_lines, norm_lines = [], []
        with ReproClient(server.host, server.port) as feed, \
                SocketFollower(server.host, server.port) as standby:
            watchers = [
                threading.Thread(target=dashboard, args=(
                    server.host, server.port, "hh", "heavy_hitters",
                    {"phi": 0.1}, hh_lines)),
                threading.Thread(target=dashboard, args=(
                    server.host, server.port, "l1", "norm",
                    {"p": 1.0}, norm_lines)),
            ]
            for w in watchers:
                w.start()
            final_epoch = 0
            for indices, deltas in skewed_batches():
                reply = feed.ingest(indices, deltas)
                final_epoch = reply.result["epoch"]
            for w in watchers:
                w.join(timeout=60)
            print(f"fed {BATCHES} batches; leader at epoch "
                  f"{final_epoch:,}")
            print("\nheavy-hitters dashboard saw:")
            print("\n".join(hh_lines[-3:]))
            print("\nL1 dashboard saw:")
            print("\n".join(norm_lines[-3:]))

            stats = feed.stats()
            print(f"\nserver stats: {stats['queries']} queries "
                  f"({stats['cache_hits']} cache hits), "
                  f"{stats['ingest_updates']:,} updates ingested")

            print("\n=== failover: promote the standby ===")
            standby.wait_for_epoch(final_epoch, timeout=60)
            wire = feed.checkpoint()
            restored = ShardedPipeline.restore(wire)
            identical = (snapshot_structure(restored.merged())
                         == snapshot_structure(standby.merged()))
            restored.close()
            print(f"standby at epoch {standby.epoch:,} after "
                  f"{len(standby.acked_epochs)} delta frames; "
                  f"byte-identical to the leader: {identical}")
            promoted = standby.promote(shards=SHARDS)
            hh = promoted.merged().heavy_hitters(phi=0.1)
            promoted.close()
            print(f"promoted standby answers heavy_hitters(0.1): "
                  f"{sorted(int(i) for i in hh)}")
            if not identical:
                raise SystemExit("standby diverged from the leader")
    print("\ndaemon drained and stopped.")


if __name__ == "__main__":
    main()
