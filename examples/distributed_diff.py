"""Reconciling replicas with one small message (Proposition 5 in action).

Two database replicas hold bit-vectors (think: per-key validity flags)
that have drifted apart.  Finding *some* divergent key is exactly the
universal relation UR^n; Proposition 5 solves it one-way in
O(log^2 n) bits by shipping the linear state of an L0 sampler, and in
O(log n) bits per message with two rounds.  Theorem 6 proves the
one-round figure optimal — this is the paper's lower-bound machinery
doing useful systems work.

The example also symmetrizes the protocol (Lemma 7) so repeated runs
surface *different* divergent keys, which is what an anti-entropy
repair loop wants.

Run:  python examples/distributed_diff.py
"""

import numpy as np

from repro.comm import (one_round_protocol, symmetrize, two_round_protocol)
from repro.comm.universal_relation import URInstance

N_KEYS = 4096
SEED = 99


def make_replicas():
    rng = np.random.default_rng(SEED)
    primary = rng.integers(0, 2, size=N_KEYS, dtype=np.int64)
    replica = primary.copy()
    divergent = rng.choice(N_KEYS, size=12, replace=False)
    replica[divergent] ^= 1
    return (URInstance(tuple(int(v) for v in primary),
                       tuple(int(v) for v in replica)),
            np.sort(divergent))


def main():
    instance, divergent = make_replicas()
    raw = instance.difference_set
    print(f"replicas diverge on {raw.size} of {N_KEYS} keys: "
          f"{divergent.tolist()}")

    print("\n=== one round: ship an L0-sampler state ===")
    result = one_round_protocol(instance, delta=0.1, seed=SEED)
    print(f"message: {result.total_bits} bits "
          f"(raw vector would be {N_KEYS} bits)")
    print(f"reported divergent key: {result.output} "
          f"(correct: {instance.is_correct(result.output)})")

    print("\n=== two rounds: estimate-then-isolate ===")
    result2 = two_round_protocol(instance, delta=0.1, seed=SEED)
    print(f"messages: {result2.message_bits} bits "
          f"(total {result2.total_bits})")
    print(f"reported divergent key: {result2.output} "
          f"(correct: {instance.is_correct(result2.output)})")

    print("\n=== repair loop with Lemma 7 symmetrization ===")
    found = set()
    for round_no in range(30):
        res = symmetrize(one_round_protocol, instance,
                         seed=SEED + round_no, delta=0.2)
        if instance.is_correct(res.output):
            found.add(int(res.output))
    print(f"30 symmetrized runs surfaced {len(found)} distinct divergent "
          f"keys out of {raw.size}")
    assert found <= set(raw.tolist())


if __name__ == "__main__":
    main()
