"""Cascaded matrix norms by sampling (the [15]/[23] application).

A service mesh logs a traffic matrix A[i, j] — bytes from tenant i to
endpoint j — as a turnstile stream (retries and compensations subtract).
Operations wants the *skew* of per-tenant load, i.e. the cascaded norm
F_2(F_1): the second moment of row masses.  Storing per-tenant counters
costs Theta(#tenants); the Lp-sampling route of Monemizadeh–Woodruff
costs polylog space and two passes.

This example plants two elephant tenants, runs the two-pass
CascadedNormEstimator, and compares against the exact value and the
naive per-row-counter cost.

Run:  python examples/cascaded_matrix_norms.py
"""

import numpy as np

from repro import CascadedNormEstimator
from repro.apps.cascaded import exact_cascaded_norm
from repro.space.accounting import bits_of

TENANTS = 64
ENDPOINTS = 64
SEED = 1234


def build_matrix():
    rng = np.random.default_rng(SEED)
    matrix = rng.integers(0, 4, size=(TENANTS, ENDPOINTS)).astype(np.int64)
    matrix[7] = rng.integers(40, 80, size=ENDPOINTS)    # elephant tenant
    matrix[23] = rng.integers(30, 60, size=ENDPOINTS)   # second elephant
    return matrix


def replay(estimator, matrix, seed):
    rng = np.random.default_rng(seed)
    i_idx, j_idx = np.nonzero(matrix)
    order = rng.permutation(i_idx.size)
    estimator.update_many(i_idx[order], j_idx[order],
                          matrix[i_idx, j_idx][order])


def main():
    matrix = build_matrix()
    truth = exact_cascaded_norm(matrix, p=1.0, k=2.0)
    print(f"traffic matrix: {TENANTS} tenants x {ENDPOINTS} endpoints, "
          f"2 planted elephants")
    print(f"exact F_2(F_1) = {truth:.3e}")

    estimator = CascadedNormEstimator(TENANTS, ENDPOINTS, p=1.0, k=2.0,
                                      samples=20, seed=SEED)
    replay(estimator, matrix, seed=1)            # pass 1
    sampled_rows = estimator.finish_first_pass()
    print(f"\npass 1 sampled tenants: {sampled_rows} "
          f"(elephants are 7 and 23 — L1 sampling finds them)")
    replay(estimator, matrix, seed=2)            # pass 2
    value = estimator.estimate()
    print(f"pass 2 estimate        = {value:.3e} "
          f"({value / truth:.2f}x of exact)")

    naive_bits = TENANTS * 48
    print(f"\nspace: estimator {bits_of(estimator)} bits; "
          f"naive per-tenant counters {naive_bits} bits")
    print("(the estimator's cost is polylog in the matrix size — it wins "
          "once tenants number in the millions; see "
          "tests/test_cascaded.py::test_space_grows_polylogarithmically)")


if __name__ == "__main__":
    main()
