"""Network-flow heavy hitters on a general update stream (Section 4.4).

A traffic monitor tracks per-flow byte balances where both directions
appear as signed updates (uploads positive, retractions/compensations
negative) — the *general update model*, where count-min's minimum rule
is unsound and the paper's count-sketch bound O(phi^-p log^2 n) is the
right tool.

The example plants a handful of elephant flows in a sea of mice,
recovers them for several (p, phi) settings, checks the Section 4.4
validity predicate, and prints the space/phi trade-off whose tightness
Theorem 9 establishes.

Run:  python examples/heavy_hitters_monitor.py
"""

import numpy as np

from repro import CountSketchHeavyHitters, is_valid_heavy_hitter_set
from repro.space.accounting import bits_of
from repro.streams import heavy_hitter_instance, vector_to_stream

N_FLOWS = 2048
SEED = 42


def recover_elephants():
    print("=== planted elephant flows, general update model ===")
    for p, phi in ((1.0, 0.125), (2.0, 0.25), (0.5, 0.3)):
        instance = heavy_hitter_instance(N_FLOWS, p=p, phi=phi,
                                         heavy_count=3, seed=SEED)
        monitor = CountSketchHeavyHitters(N_FLOWS, p=p, phi=phi, seed=SEED)
        # interleaved signed updates, flows mutate up and down
        vector_to_stream(instance.vector, seed=SEED).apply_to(monitor)
        reported = monitor.heavy_hitters()
        valid = is_valid_heavy_hitter_set(reported, instance.vector, p, phi)
        planted = instance.required()
        print(f"  p={p:<4} phi={phi:<6} planted={planted.tolist()} "
              f"reported={reported.tolist()} valid={valid}")


def space_tradeoff():
    print("\n=== space vs phi (Theorem 9 says this is tight) ===")
    print(f"  {'phi':>8} {'m=O(1/phi^p)':>13} {'bits':>10}")
    for phi in (0.5, 0.25, 0.125, 0.0625):
        monitor = CountSketchHeavyHitters(N_FLOWS, p=1.0, phi=phi,
                                          seed=SEED)
        print(f"  {phi:>8} {monitor.m:>13} {bits_of(monitor):>10}")


def deletion_stress():
    print("\n=== a flow that surges then drains must drop out ===")
    monitor = CountSketchHeavyHitters(N_FLOWS, p=1.0, phi=0.2, seed=SEED)
    background = np.zeros(N_FLOWS, dtype=np.int64)
    background[100:130] = 40
    vector_to_stream(background, seed=1).apply_to(monitor)
    monitor.update(7, 10**5)          # flow 7 surges
    surged = monitor.heavy_hitters()
    monitor.update(7, -(10**5))       # and fully drains
    drained = monitor.heavy_hitters()
    print(f"  after surge : flow 7 reported = {7 in surged.tolist()}")
    print(f"  after drain : flow 7 reported = {7 in drained.tolist()}")
    assert 7 in surged.tolist() and 7 not in drained.tolist()


if __name__ == "__main__":
    recover_elephants()
    space_tradeoff()
    deletion_stress()
