"""A chaos drill: seeded faults at every layer, zero lost updates.

One process, four injected failures, one invariant — the state that
comes out the other side is byte-identical to a clean run:

1. a **supervised daemon** (process workers with a restart policy)
   whose fault plan crashes a worker mid-stream: the supervisor
   rebuilds the shard from its checkpoint and replays the chunk log;
2. a **retrying client** whose own fault plan cuts the socket mid-send
   twice: idempotent request ids plus the server's dedup window make
   the retries exactly-once;
3. the server's plan also **truncates a replication frame**, killing
   the standby's subscription: the follower resyncs from a fresh base
   and converges anyway;
4. at the end the leader, the standby and a fault-free serial oracle
   replaying the acked batches must all hold identical bytes.

Every schedule is seeded, so this drill fails reproducibly or not at
all.  Run:  python examples/chaos_drill.py
"""

import numpy as np

from repro.engine import RestartPolicy, ShardedPipeline
from repro.engine import checkpoint as snapshot_structure
from repro.faults import DELTA_TRUNCATE, SOCKET_DROP, WORKER_CRASH, \
    FaultPlan
from repro.net import ReproClient, RetryPolicy, ServerThread, \
    SocketFollower
from repro.service import QueryService
from repro.sketch import CountSketch

UNIVERSE = 2048
SHARDS = 2
CHUNK = 512
BATCHES = 6
BATCH = 1_500
SEED = 2011


def factory():
    return CountSketch(UNIVERSE, m=8, rows=5, seed=SEED)


def batches():
    rng = np.random.default_rng(SEED)
    for _ in range(BATCHES):
        yield (rng.integers(0, UNIVERSE, size=BATCH, dtype=np.int64),
               rng.integers(-3, 6, size=BATCH, dtype=np.int64))


def main():
    print("=== the drill ===")
    # Worker crash at the 7th chunk submission; replication frame 3
    # ships torn.  Both heal without operator action.
    server_plan = FaultPlan(seed=1, at={WORKER_CRASH: (7,),
                                        DELTA_TRUNCATE: (3,)})
    # The client's own chaos: cut the socket mid-send on sends 2 and 5.
    client_plan = FaultPlan(seed=2, at={SOCKET_DROP: (2, 5)})

    pipeline = ShardedPipeline(factory, shards=SHARDS, chunk_size=CHUNK,
                               backend="process", faults=server_plan,
                               restarts=RestartPolicy(backoff_s=0.01))
    acked = []
    with QueryService(pipeline, refresh_every=1) as service, \
            ServerThread(service, faults=server_plan) as server:
        print(f"supervised daemon on {server.host}:{server.port} "
              f"(process backend, {SHARDS} shards)")
        with ReproClient(server.host, server.port,
                         retry=RetryPolicy(base_s=0.02, seed=3),
                         faults=client_plan) as feed, \
                SocketFollower(server.host, server.port) as standby:
            for indices, deltas in batches():
                reply = feed.ingest(indices, deltas)
                acked.append((reply.result["epoch"], indices, deltas))
            final_epoch = acked[-1][0]
            print(f"fed {BATCHES} batches through "
                  f"{len(client_plan.schedule())} socket cuts; "
                  f"leader acked epoch {final_epoch:,}")

            standby.wait_for_epoch(final_epoch, timeout=60)
            print(f"standby at epoch {standby.epoch:,} after "
                  f"{standby.resyncs} resync(s)")

            wire = feed.checkpoint()
            health = feed.health()

        chain_ok = [before for (before, _, _), (epoch, *_) in
                    zip([(0, 0, 0)] + acked, acked)] \
            == [epoch - BATCH for epoch, *_ in acked]
        restarts = service.stats.worker_restarts

    print("\n=== the verdict ===")
    with ShardedPipeline.restore(wire) as leader:
        leader_bytes = snapshot_structure(leader.merged())
    standby_bytes = snapshot_structure(standby.merged())
    with ShardedPipeline(factory, shards=1, chunk_size=CHUNK) as oracle:
        for _, indices, deltas in acked:
            oracle.ingest(indices, deltas)
        oracle.flush()
        oracle_bytes = snapshot_structure(oracle.merged())

    fired = ", ".join(f"{site}@{visit}" for site, visit
                      in server_plan.schedule())
    print(f"server faults fired: {fired or 'none'}")
    print(f"worker restarts: {restarts}; daemon health at the end: "
          f"{health['status']}")
    print(f"ack chain gapless: {chain_ok}")
    print(f"leader == oracle: {leader_bytes == oracle_bytes}")
    print(f"standby == oracle: {standby_bytes == oracle_bytes}")
    if not (chain_ok and leader_bytes == oracle_bytes
            and standby_bytes == oracle_bytes):
        raise SystemExit("chaos drill diverged")
    print("\nevery injected failure healed; no acked update was lost.")


if __name__ == "__main__":
    main()
