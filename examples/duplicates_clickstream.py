"""Finding duplicate clicks in an ad stream (the paper's Section 3 use).

Duplicate detection in click streams is the original motivation the
paper cites ([21], click-fraud detection): a publisher charged per
click wants to flag click IDs that occur more than once, using memory
logarithmic in the ID space.

This example runs all three stream-length regimes of Section 3:

* length n+1 (Theorem 3: a duplicate is guaranteed),
* length n-s  (Theorem 4: certify NO-DUPLICATE when the stream is clean),
* length n+s  (the closing remark: cheap position sampling when
  duplicates are plentiful),

and compares the Theorem 3 space against the O(log^3 n)-shaped
Gopalan–Radhakrishnan-style baseline.

Run:  python examples/duplicates_clickstream.py
"""

import numpy as np

from repro import (DuplicateFinder, GRDuplicatesBaseline,
                   LongStreamDuplicateFinder, NO_DUPLICATE,
                   ShortStreamDuplicateFinder)
from repro.space.accounting import bits_of
from repro.streams import (duplicate_stream, long_stream, short_stream)

N_IDS = 512
SEED = 7


def regime_theorem3():
    print("=== regime 1: n+1 clicks over n IDs (Theorem 3) ===")
    instance = duplicate_stream(N_IDS, seed=SEED)
    finder = DuplicateFinder(N_IDS, delta=0.1, seed=SEED)
    finder.process_items(instance.items)
    result = finder.result()
    if result.failed:
        print("FAIL — within the delta=0.1 budget")
        return
    genuine = result.index in set(instance.duplicates.tolist())
    print(f"flagged click ID {result.index}; genuinely duplicated: "
          f"{genuine}")
    print(f"space used: {bits_of(finder)} bits for {N_IDS} possible IDs")


def regime_theorem4():
    print("\n=== regime 2: short streams, exact NO-DUPLICATE (Theorem 4) ===")
    clean = short_stream(N_IDS, missing=8, with_duplicate=False, seed=SEED)
    finder = ShortStreamDuplicateFinder(N_IDS, s=8, delta=0.1, seed=SEED)
    finder.process_items(clean.items)
    verdict = finder.result()
    print(f"clean stream of {len(clean.items)} clicks -> {verdict} "
          f"(certified, probability 1)")

    dirty = short_stream(N_IDS, missing=8, with_duplicate=True,
                         seed=SEED + 1)
    finder = ShortStreamDuplicateFinder(N_IDS, s=8, delta=0.1,
                                        seed=SEED + 1)
    finder.process_items(dirty.items)
    verdict = finder.result()
    assert verdict != NO_DUPLICATE
    print(f"dirty stream -> flagged ID "
          f"{verdict.index if not verdict.failed else 'FAIL'} "
          f"(planted: {int(dirty.duplicates[0])})")


def regime_long_streams():
    print("\n=== regime 3: n+s clicks, crossover at n/s = log n ===")
    for extra in (4, N_IDS // 2):
        instance = long_stream(N_IDS, extra=extra, seed=SEED)
        finder = LongStreamDuplicateFinder(N_IDS, extra=extra, delta=0.1,
                                           seed=SEED)
        finder.process_items(instance.items)
        result = finder.result()
        status = ("FAIL" if result.failed
                  else f"ID {result.index}"
                  + (" (genuine)" if result.index
                     in set(instance.duplicates.tolist()) else " (WRONG)"))
        print(f"  s={extra:>4}: strategy={finder.strategy:<9} "
              f"space={bits_of(finder):>8} bits  ->  {status}")


def baseline_comparison():
    print("\n=== space vs the prior art (log^2 vs log^3 shape) ===")
    instance = duplicate_stream(N_IDS, seed=SEED + 2)
    ours = DuplicateFinder(N_IDS, delta=0.25, seed=SEED)
    theirs = GRDuplicatesBaseline(N_IDS, delta=0.25, seed=SEED)
    ours.process_items(instance.items)
    theirs.process_items(instance.items)
    b_ours, b_theirs = bits_of(ours), bits_of(theirs)
    print(f"  Theorem 3 finder:     {b_ours:>9} bits")
    print(f"  GR-shaped baseline:   {b_theirs:>9} bits "
          f"({b_theirs / b_ours:.1f}x)")
    print("  (the gap widens as log n grows — see "
          "benchmarks/bench_duplicates.py)")


if __name__ == "__main__":
    regime_theorem3()
    regime_theorem4()
    regime_long_streams()
    baseline_comparison()
