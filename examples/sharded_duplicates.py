"""Distributed duplicate finding with the sharded engine.

The Theorem 3 reduction is linear: encode an item stream over [n] as
the turnstile vector ``x_i = occurrences(i) - 1`` and L1-sample — a
positive sample is a duplicate.  Linearity means the whole detection
pipeline shards: partition the turnstile updates across K worker
sketches, snapshot mid-stream (a worker restart costs nothing), merge
with a binary tree and sample the reconciled sketch.

This script plays all the roles in one process:

1. a click stream of n+1 items over [0, n) (a duplicate must exist),
2. K = 4 shard L1 samplers fed by a :class:`ShardedPipeline`,
3. a mid-stream checkpoint + restore (simulating worker migration),
4. merge-tree reconciliation and Theorem 3's repetition loop.

Run:  python examples/sharded_duplicates.py
"""

import numpy as np

from repro import LpSampler
from repro.engine import ShardedPipeline
from repro.streams import items_to_updates, planted_duplicate_stream

UNIVERSE = 400
SHARDS = 4
REPETITIONS = 6     # Theorem 3: each repetition succeeds w.p. >= 1/4
SEED = 2011


def main():
    instance = planted_duplicate_stream(UNIVERSE, copies=4, seed=SEED)
    stream = instance.update_stream()   # baseline -1 plus +1 per item
    print("=== the workload ===")
    print(f"{instance.items.size} items over [0, {UNIVERSE}); planted "
          f"duplicate: {int(instance.duplicates[0])}")

    print(f"\n=== sharded detection ({SHARDS} shards, hash partition) ===")
    found = None
    for rep in range(REPETITIONS):
        pipeline = ShardedPipeline(
            lambda: LpSampler(UNIVERSE, p=1.0, eps=0.5, delta=0.5,
                              seed=SEED + 17 * rep, rounds=8),
            shards=SHARDS, chunk_size=128)

        # first half of the traffic, then a snapshot/restore (as if the
        # workers were migrated), then the rest
        half = (len(stream) // 2 // 128) * 128
        pipeline.ingest(stream.indices[:half], stream.deltas[:half])
        blob = pipeline.checkpoint()
        pipeline = ShardedPipeline.restore(blob)
        pipeline.ingest(stream.indices[half:], stream.deltas[half:])

        result = pipeline.merged().sample()
        status = ("FAIL" if result.failed else
                  f"i={result.index} x_i~{result.estimate:+.1f}")
        print(f"  repetition {rep}: checkpoint {len(blob) // 1024} KiB, "
              f"merged sample -> {status}")
        if not result.failed and result.estimate > 0:
            found = int(result.index)
            break

    print("\n=== verdict ===")
    if found is None:
        print("no positive sample (within the delta budget); rerun with "
              "more repetitions")
        return
    count = int((instance.items == found).sum())
    print(f"duplicate found: letter {found} occurs {count}x "
          f"(genuine: {count >= 2})")


if __name__ == "__main__":
    main()
