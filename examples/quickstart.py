"""Quickstart: Lp sampling from a turnstile stream.

Demonstrates the library's core objects on a small universe:

1. why classical reservoir sampling breaks under deletions,
2. the Figure 1 precision Lp-sampler (p = 1) on the same stream,
3. the Theorem 2 zero-relative-error L0-sampler,
4. the space accounting every structure carries.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import L0Sampler, LpSampler, ReservoirSampler, lp_distribution
from repro.space.accounting import bits_of

UNIVERSE = 1000
SEED = 2011  # PODS 2011


def build_stream():
    """A turnstile stream: inserts, then deletions that reshape x."""
    updates = []
    # bulk inserts: coordinate i gets weight ~ i for i in a small band
    for i in range(100, 120):
        updates.append((i, i))
    # heavy coordinate appears ...
    updates.append((7, 5000))
    # ... and is mostly deleted again: the final weight is 50
    updates.append((7, -4950))
    # a coordinate that is fully cancelled
    updates.append((333, 42))
    updates.append((333, -42))
    return updates


def main():
    updates = build_stream()
    final = np.zeros(UNIVERSE, dtype=np.int64)
    for i, u in updates:
        final[i] += u

    print("=== the stream ===")
    print(f"{len(updates)} updates, {np.count_nonzero(final)} non-zero "
          f"coordinates, ||x||_1 = {np.abs(final).sum()}")

    # -- 1. reservoir sampling mishandles the deletions -------------------
    reservoir = ReservoirSampler(UNIVERSE, seed=SEED)
    for i, u in updates:
        reservoir.update(i, u)
    result = reservoir.sample()
    print("\n=== reservoir sampler (classical, insertion-only) ===")
    print(f"sample = {result.index}, trustworthy = "
          f"{reservoir.insertion_only}  <- deletions void the guarantee")

    # -- 2. the paper's Lp sampler handles them ----------------------------
    print("\n=== precision L1 sampler (Figure 1, Theorem 1) ===")
    sampler = LpSampler(UNIVERSE, p=1.0, eps=0.25, delta=0.1, seed=SEED)
    for i, u in updates:
        sampler.update(i, u)
    result = sampler.sample()
    if result.failed:
        print(f"FAIL ({result.reason}) — rerun with another seed")
    else:
        truth = lp_distribution(final, 1.0)
        print(f"sampled coordinate {result.index} "
              f"(true weight {truth[result.index]:.3f} of ||x||_1)")
        print(f"estimated x_i = {result.estimate:.1f}, "
              f"true x_i = {final[result.index]}")
    print(f"space: {bits_of(sampler)} bits "
          f"(vs {UNIVERSE * 21} bits to store x exactly)")

    # -- 3. uniform support sampling, exact values --------------------------
    print("\n=== L0 sampler (Theorem 2, zero relative error) ===")
    counts = {}
    for trial in range(200):
        l0 = L0Sampler(UNIVERSE, delta=0.1, seed=SEED + trial)
        for i, u in updates:
            l0.update(i, u)
        result = l0.sample()
        if not result.failed:
            assert final[result.index] == result.estimate  # always exact
            counts[result.index] = counts.get(result.index, 0) + 1
    print(f"200 independent samplers; support hit rates (should be ~uniform "
          f"over {np.count_nonzero(final)} coordinates):")
    shown = sorted(counts.items())[:8]
    for idx, c in shown:
        print(f"  x[{idx}] = {final[idx]:>4}  sampled {c} times")
    assert 333 not in counts, "cancelled coordinate must never be sampled"
    print("cancelled coordinate 333 was never sampled — deletions handled.")


if __name__ == "__main__":
    main()
