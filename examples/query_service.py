"""A heavy-hitter dashboard polling a live stream.

The shape every monitoring dashboard has: producers keep pushing
traffic into the pipeline while a dashboard polls "who is hot right
now?" a few times a second.  Without a serving layer each poll would
fold all K shard states on the caller's thread; with the query service
each poll reads an epoch-stamped frozen snapshot, repeat polls between
refreshes are LRU cache hits, and every number on the dashboard is
reproducible ("heavy hitters as of update 40,000", not "as of
whenever the fold happened to run").

Run:  python examples/query_service.py
"""

import numpy as np

from repro.apps.heavy_hitters import CountMedianHeavyHitters
from repro.engine import ShardedPipeline
from repro.service import QueryService

UNIVERSE = 4096
UPDATES = 60_000
BATCH = 3_000          # one producer push
POLLS_PER_BATCH = 5    # dashboard polls between pushes
SEED = 2011

rng = np.random.default_rng(SEED)

# Traffic with three planted hot keys drifting in intensity.
indices = rng.integers(0, UNIVERSE, size=UPDATES, dtype=np.int64)
deltas = rng.integers(1, 6, size=UPDATES, dtype=np.int64)
hot = rng.choice(UNIVERSE, size=3, replace=False)
hot_mask = rng.random(UPDATES) < 0.3
indices[hot_mask] = rng.choice(hot, size=int(hot_mask.sum()))
deltas[hot_mask] += 4

print(f"planted hot keys: {sorted(hot.tolist())}\n")

pipeline = ShardedPipeline(
    lambda: CountMedianHeavyHitters(UNIVERSE, phi=0.08, seed=SEED,
                                    strict=False),
    shards=4, chunk_size=2048)

# Refresh the serving snapshot once per producer push; keep a few old
# epochs around so "what changed since the last refresh?" is a query,
# not an archaeology project.
with QueryService(pipeline, refresh_every=BATCH, keep=4,
                  cache_size=64) as service:
    previous: set = set()
    for start in range(0, UPDATES, BATCH):
        service.ingest(indices[start:start + BATCH],
                       deltas[start:start + BATCH])
        # The dashboard polls more often than snapshots refresh: every
        # poll after the first at an epoch is a cache hit.
        for _ in range(POLLS_PER_BATCH):
            hitters = service.query("heavy_hitters")
        epoch = service.current().epoch
        current = set(int(i) for i in hitters)
        joined, left = current - previous, previous - current
        if joined or left or start == 0:
            change = "".join(f" +{i}" for i in sorted(joined)) + \
                     "".join(f" -{i}" for i in sorted(left))
            mass = service.query("norm", p=1)
            print(f"epoch {epoch:>6}: hot = {sorted(current)}"
                  f"   (L1 mass {mass:,.0f};{change})")
        previous = current

    # Time travel: compare against a retained earlier epoch.
    epochs = service.epochs
    then, now = epochs[0], epochs[-1]
    before = set(int(i)
                 for i in service.query("heavy_hitters", at=then))
    print(f"\nsince epoch {then}: "
          f"joined {sorted(previous - before) or '-'}, "
          f"left {sorted(before - previous) or '-'}")

    stats = service.stats
    print(f"\nserved {stats.queries} queries from "
          f"{stats.snapshots_captured} snapshots; cache hit rate "
          f"{stats.hit_rate:.0%} "
          f"({stats.cache_hits} hits / {stats.cache_misses} misses)")
    print(f"every hit returned exactly what recomputing would: "
          f"snapshots are immutable, so (epoch, query, args) "
          f"determines the answer")
